//! Streaming-inference benchmark: replay a synthetic corpus as one
//! interleaved point stream through `trmma_core::StreamEngine` and measure
//! what a live deployment cares about — per-point decode latency quantiles,
//! points/s and sessions/s — per method, thread count, **router policy and
//! arrival skew**.
//!
//! Produces the rows behind `BENCH_streaming.json`. Every run is validated:
//! each session's finalized result must equal the offline
//! `match_trajectory` on the same trajectory (the replay-equivalence
//! contract of `OnlineMatcher`), and the row carries an
//! `identical_to_offline` flag the binary asserts on. Rows for HMM-family
//! methods also record their `TransitionProvider` hit/miss counter deltas.
//!
//! The *skewed* workload gives every session an id that collides modulo
//! the worker count — the adversary of the legacy `id % threads` router.
//! Each row snapshots the engine's `RouterStats` and reports the variance
//! of the per-worker queue-depth high-water marks, so the imbalance (and
//! the load-aware router's fix) is measurable even on a single-core host:
//! queue depth is a property of routing, not of parallel speedup.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma_core::{FaultPlan, RouterPolicy, SessionId, StreamEngine, StreamEvent, StreamOptions};
use trmma_roadnet::shortest::CacheStats;
use trmma_roadnet::TransitionProvider;
use trmma_traj::online::OnlineMatcher;
use trmma_traj::types::{GpsPoint, Trajectory};
use trmma_traj::MatchResult;

use crate::batch_bench::cache_delta;
use crate::json::Value;

/// One measured streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamRow {
    /// The matcher measured (`"MMA"`, `"HMM"`, `"FMM"`, `"LHMM"`).
    pub method: String,
    /// Engine worker threads.
    pub threads: usize,
    /// Router policy the engine ran (`"hash_mod"` or `"power_of_two"`).
    pub router: String,
    /// Arrival workload (`"uniform"` ids or `"skewed"` — ids colliding
    /// modulo the worker count).
    pub workload: String,
    /// Concurrent sessions replayed.
    pub sessions: usize,
    /// Points decoded across all sessions.
    pub points: u64,
    /// Decoded points per second over the run's wall clock.
    pub points_per_s: f64,
    /// Sessions finalized per second over the run's wall clock.
    pub sessions_per_s: f64,
    /// Median worker-side per-point decode latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-point decode latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile per-point decode latency, milliseconds — the tail
    /// a live deployment's SLO actually binds on.
    pub p999_ms: f64,
    /// Worst single-point decode latency observed, milliseconds.
    pub max_ms: f64,
    /// Mean stabilization lag: pushed points minus the stabilized-prefix
    /// watermark, averaged over all updates (how far the decoder's
    /// committed prefix trails the stream; 0 = every point final
    /// immediately).
    pub mean_stable_lag: f64,
    /// Variance of the per-worker queue-depth high-water marks — the
    /// router-imbalance signal (lower = better balanced).
    pub queue_depth_variance: f64,
    /// Sessions the router migrated between workers during the run.
    pub migrations: u64,
    /// Heap allocations absorbed by the workers' scratch arenas on the
    /// per-point path (summed over workers from `RouterStats`).
    pub allocs_avoided: u64,
    /// Whether every finalized session matched the offline decode exactly.
    pub identical: bool,
    /// Transition-oracle counters accumulated during the run, when the
    /// method has a [`TransitionProvider`].
    pub cache: Option<CacheStats>,
    /// Deployment variant measured: `"monolithic"` or `"sharded"` (set by
    /// [`tag_stream_variant`] when the binary runs a `--shards` sweep).
    pub variant: String,
    /// Resident bytes of the variant's candidate-search / route-distance
    /// structures; `None` until tagged.
    pub resident_bytes: Option<usize>,
}

/// Tags measured streaming rows with their deployment variant and memory
/// accounting, mirroring `batch_bench::tag_variant` for the streaming
/// document.
#[must_use]
pub fn tag_stream_variant(
    mut rows: Vec<StreamRow>,
    variant: &str,
    resident_bytes: usize,
) -> Vec<StreamRow> {
    for r in &mut rows {
        r.variant = variant.to_string();
        r.resident_bytes = Some(resident_bytes);
    }
    rows
}

/// Session ids that all collide modulo `threads` — the skewed-arrival
/// distribution that starves workers under `id % threads` routing.
#[must_use]
pub fn skewed_session_ids(n: usize, threads: usize) -> Vec<SessionId> {
    (0..n).map(|i| (i * threads.max(1)) as SessionId).collect()
}

/// The identity id assignment of the uniform workload.
#[must_use]
pub fn uniform_session_ids(n: usize) -> Vec<SessionId> {
    (0..n as u64).collect()
}

/// Interleaves the points of `sessions` into one stream: at every step a
/// seeded RNG picks one unfinished session and emits its next point, so
/// arrivals from different devices are arbitrarily mixed while each
/// session's own points stay in order (the shape the engine promises to
/// handle). `ids[i]` is the stream id carried by session `i`'s points.
#[must_use]
pub fn interleave_ids(
    sessions: &[Trajectory],
    ids: &[SessionId],
    seed: u64,
) -> Vec<(SessionId, GpsPoint)> {
    assert_eq!(sessions.len(), ids.len(), "one id per session");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cursors = vec![0usize; sessions.len()];
    let mut open: Vec<usize> = (0..sessions.len()).filter(|&i| !sessions[i].is_empty()).collect();
    let total: usize = sessions.iter().map(Trajectory::len).sum();
    let mut out = Vec::with_capacity(total);
    while !open.is_empty() {
        let pick = rng.gen_range(0..open.len());
        let sid = open[pick];
        out.push((ids[sid], sessions[sid].points[cursors[sid]]));
        cursors[sid] += 1;
        if cursors[sid] == sessions[sid].len() {
            open.swap_remove(pick);
        }
    }
    out
}

/// [`interleave_ids`] with the identity id assignment (session `i` streams
/// as id `i`).
#[must_use]
pub fn interleave(sessions: &[Trajectory], seed: u64) -> Vec<(SessionId, GpsPoint)> {
    interleave_ids(sessions, &uniform_session_ids(sessions.len()), seed)
}

/// Replays `events` through a fresh engine per thread count and collects a
/// [`StreamRow`] per configuration, validating finalized output against
/// the sequential offline reference. `ids[i]` must be the stream id of
/// `sessions[i]` (as produced by [`interleave_ids`]).
#[must_use]
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn bench_streaming_routed<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    sessions: &[Trajectory],
    ids: &[SessionId],
    events: &[(SessionId, GpsPoint)],
    thread_counts: &[usize],
    policy: RouterPolicy,
    workload: &str,
    provider: Option<&TransitionProvider>,
) -> Vec<StreamRow> {
    assert_eq!(sessions.len(), ids.len(), "one id per session");
    // The corpus tiles trajectories up to the target session count; decode
    // each unique trajectory once and share the result across duplicates.
    let mut reference: Vec<MatchResult> = Vec::with_capacity(sessions.len());
    for (i, t) in sessions.iter().enumerate() {
        match sessions[..i].iter().position(|u| u == t) {
            Some(j) => {
                let dup = reference[j].clone();
                reference.push(dup);
            }
            None => reference.push(matcher.match_trajectory(t)),
        }
    }
    let snap = || provider.map_or_else(CacheStats::default, TransitionProvider::stats);
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let before = snap();
        // Idle eviction off: the replay is as fast as the engine can go,
        // and a mid-replay eviction would split a session.
        let engine = StreamEngine::new(
            matcher.clone(),
            StreamOptions::with_threads(threads).idle_timeout_s(0.0).router_policy(policy),
        );
        let started = Instant::now();
        let mut proc_s: Vec<f64> = Vec::with_capacity(events.len());
        let mut lag_sum = 0.0f64;
        let mut finals: HashMap<SessionId, MatchResult> = HashMap::new();
        let absorb = |es: Vec<StreamEvent>,
                      proc_s: &mut Vec<f64>,
                      lag_sum: &mut f64,
                      finals: &mut HashMap<SessionId, MatchResult>| {
            for e in es {
                match e {
                    StreamEvent::Update { seq, update, proc_s: dt, .. } => {
                        proc_s.push(dt);
                        *lag_sum += (seq + 1).saturating_sub(update.stable_prefix) as f64;
                    }
                    StreamEvent::Finalized { session, result, .. } => {
                        finals.insert(session, result);
                    }
                }
            }
        };
        for (i, &(sid, p)) in events.iter().enumerate() {
            assert!(engine.push(sid, p), "worker queue closed mid-replay");
            if i % 512 == 511 {
                absorb(engine.poll_events(), &mut proc_s, &mut lag_sum, &mut finals);
            }
        }
        for &sid in ids {
            engine.finish(sid);
        }
        // Let the workers drain, then snapshot routing telemetry before
        // the engine (and its counters) is torn down — worker-side
        // counters (points, migrations) only settle once the queues are
        // empty. The replay isn't over until then anyway, so this wait is
        // part of the measured wall clock, not overhead.
        engine.quiesce(std::time::Duration::from_secs(60));
        let router = engine.router_stats();
        let (rest, stats) = engine.shutdown();
        let wall_s = started.elapsed().as_secs_f64();
        absorb(rest, &mut proc_s, &mut lag_sum, &mut finals);

        let identical = sessions
            .iter()
            .enumerate()
            .all(|(i, t)| t.is_empty() || finals.get(&ids[i]) == Some(&reference[i]));
        proc_s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let quantile = |q: f64| -> f64 {
            if proc_s.is_empty() {
                return 0.0;
            }
            let ix = ((proc_s.len() - 1) as f64 * q).round() as usize;
            proc_s[ix] * 1e3
        };
        rows.push(StreamRow {
            method: matcher.name().to_string(),
            threads,
            router: policy.name().to_string(),
            workload: workload.to_string(),
            sessions: sessions.len(),
            points: stats.points,
            points_per_s: if wall_s > 0.0 { stats.points as f64 / wall_s } else { 0.0 },
            sessions_per_s: if wall_s > 0.0 { stats.finalized() as f64 / wall_s } else { 0.0 },
            p50_ms: quantile(0.5),
            p99_ms: quantile(0.99),
            p999_ms: quantile(0.999),
            max_ms: quantile(1.0),
            mean_stable_lag: if stats.points > 0 { lag_sum / stats.points as f64 } else { 0.0 },
            queue_depth_variance: router.queue_depth_hwm_variance(),
            migrations: router.migrated(),
            allocs_avoided: router.allocs_avoided(),
            identical,
            cache: provider.map(|_| cache_delta(before, snap())),
            variant: "monolithic".to_string(),
            resident_bytes: None,
        });
    }
    rows
}

/// [`bench_streaming_routed`] under the default load-aware router and the
/// uniform (identity-id) workload — the primary per-method sweep.
#[must_use]
pub fn bench_streaming<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    sessions: &[Trajectory],
    events: &[(SessionId, GpsPoint)],
    thread_counts: &[usize],
    provider: Option<&TransitionProvider>,
) -> Vec<StreamRow> {
    let ids = uniform_session_ids(sessions.len());
    bench_streaming_routed(
        matcher,
        sessions,
        &ids,
        events,
        thread_counts,
        RouterPolicy::PowerOfTwo,
        "uniform",
        provider,
    )
}

/// One measured chaos (fault-injection) run: the same replay as a
/// [`StreamRow`], but with seeded worker panics, queue stalls and reply
/// delays injected mid-stream. The row records what crash-safety costs
/// and — the acceptance bar — that it loses nothing: `sessions_lost`
/// must be 0 and `identical` true on every emitted row.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// The matcher measured.
    pub method: String,
    /// Engine worker threads.
    pub threads: usize,
    /// Fault-plan RNG seed (rows are reproducible per seed).
    pub fault_seed: u64,
    /// Concurrent sessions replayed.
    pub sessions: usize,
    /// Points the workers decoded, *including* journal replays —
    /// at-least-once delivery makes this `>= streamed`.
    pub points: u64,
    /// Unique points streamed (the fault-free decode count).
    pub streamed: u64,
    /// Worker panics injected and recovered by the supervisor.
    pub worker_restarts: u64,
    /// Sessions rebuilt from checkpoint + journal after a panic.
    pub sessions_recovered: u64,
    /// Journaled points replayed to rebuild recovered sessions.
    pub points_replayed: u64,
    /// Sessions whose state could not be rebuilt — **expected 0**.
    pub sessions_lost: u64,
    /// Mean supervisor recovery latency per worker crash, milliseconds
    /// (join + respawn + checkpoint restore + journal replay).
    pub mean_recovery_ms: f64,
    /// Wall-clock seconds for the whole faulted replay.
    pub wall_s: f64,
    /// Whether every finalized session still matched the offline decode
    /// bitwise — **expected true**.
    pub identical: bool,
}

/// Replays `events` through an engine with `plan`'s faults injected and
/// measures the recovery telemetry. The stream uses identity session ids
/// (as produced by [`interleave`]). Checkpoints every 16 points so a
/// mid-stream panic exercises both restore and journal replay.
#[must_use]
pub fn bench_chaos<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    sessions: &[Trajectory],
    events: &[(SessionId, GpsPoint)],
    threads: usize,
    plan: FaultPlan,
) -> ChaosRow {
    FaultPlan::silence_injected_panics();
    let reference: Vec<MatchResult> = {
        let mut out: Vec<MatchResult> = Vec::with_capacity(sessions.len());
        for (i, t) in sessions.iter().enumerate() {
            match sessions[..i].iter().position(|u| u == t) {
                Some(j) => {
                    let dup = out[j].clone();
                    out.push(dup);
                }
                None => out.push(matcher.match_trajectory(t)),
            }
        }
        out
    };
    let engine = StreamEngine::with_faults(
        matcher.clone(),
        StreamOptions::with_threads(threads).idle_timeout_s(0.0).checkpoint_every(16),
        plan,
    );
    let started = Instant::now();
    let mut finals: HashMap<SessionId, MatchResult> = HashMap::new();
    let mut absorb = |es: Vec<StreamEvent>| {
        for e in es {
            if let StreamEvent::Finalized { session, result, .. } = e {
                finals.insert(session, result);
            }
        }
    };
    for (i, &(sid, p)) in events.iter().enumerate() {
        assert!(engine.push(sid, p), "push failed under chaos (restart budget exhausted?)");
        if i % 512 == 511 {
            absorb(engine.poll_events());
        }
    }
    for sid in 0..sessions.len() {
        engine.finish(sid as SessionId);
    }
    engine.quiesce(std::time::Duration::from_secs(120));
    let router = engine.router_stats();
    let (rest, stats) = engine.shutdown();
    let wall_s = started.elapsed().as_secs_f64();
    absorb(rest);
    let identical = sessions
        .iter()
        .enumerate()
        .all(|(i, t)| t.is_empty() || finals.get(&(i as SessionId)) == Some(&reference[i]));
    ChaosRow {
        method: matcher.name().to_string(),
        threads,
        fault_seed: plan.seed,
        sessions: sessions.len(),
        points: stats.points,
        streamed: events.len() as u64,
        worker_restarts: router.worker_restarts,
        sessions_recovered: router.sessions_recovered,
        points_replayed: router.points_replayed,
        sessions_lost: router.sessions_lost,
        mean_recovery_ms: if router.worker_restarts > 0 {
            router.recovery_time_s * 1e3 / router.worker_restarts as f64
        } else {
            0.0
        },
        wall_s,
        identical,
    }
}

/// Serialises chaos rows into the `"chaos"` array of the
/// `BENCH_streaming.json` document.
#[must_use]
pub fn chaos_rows_to_json(rows: &[ChaosRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|r| {
                crate::json!({
                    "method": r.method,
                    "threads": r.threads,
                    "fault_seed": r.fault_seed,
                    "sessions": r.sessions,
                    "points_decoded": r.points,
                    "points_streamed": r.streamed,
                    "worker_restarts": r.worker_restarts,
                    "sessions_recovered": r.sessions_recovered,
                    "points_replayed": r.points_replayed,
                    "sessions_lost": r.sessions_lost,
                    "mean_recovery_ms": r.mean_recovery_ms,
                    "wall_s": r.wall_s,
                    "identical_to_offline": r.identical,
                })
            })
            .collect(),
    )
}

/// Serialises streaming rows (and the chaos sweep, when run) into the
/// `BENCH_streaming.json` document.
#[must_use]
pub fn stream_rows_to_json(
    rows: &[StreamRow],
    chaos: &[ChaosRow],
    total_points: usize,
    dataset: &str,
) -> Value {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Value::Object(vec![
        ("dataset".to_string(), Value::String(dataset.to_string())),
        ("stream_points".to_string(), crate::json!(total_points)),
        ("host_threads".to_string(), crate::json!(host)),
        (
            "rows".to_string(),
            Value::Array(
                rows.iter()
                    .map(|r| {
                        crate::json!({
                            "method": r.method,
                            "threads": r.threads,
                            "router": r.router,
                            "workload": r.workload,
                            "sessions": r.sessions,
                            "points": r.points,
                            "points_per_s": r.points_per_s,
                            "sessions_per_s": r.sessions_per_s,
                            "p50_point_ms": r.p50_ms,
                            "p99_point_ms": r.p99_ms,
                            "p999_point_ms": r.p999_ms,
                            "max_point_ms": r.max_ms,
                            "mean_stable_lag_points": r.mean_stable_lag,
                            "queue_depth_variance": r.queue_depth_variance,
                            "migrations": r.migrations,
                            "identical_to_offline": r.identical,
                            "allocs_avoided": r.allocs_avoided,
                            "cache_hits": r.cache.map(|c| c.hits),
                            "cache_misses": r.cache.map(|c| c.misses),
                            "cache_warm_hits": r.cache.map(|c| c.warm_hits),
                            "cache_nodes_expanded": r.cache.map(|c| c.nodes_expanded),
                            "cache_heap_pushes": r.cache.map(|c| c.heap_pushes),
                            "cache_allocs_avoided": r.cache.map(|c| c.allocs_avoided),
                            "cache_evictions": r.cache.map(|c| c.evictions),
                            "variant": r.variant,
                            "resident_bytes": r.resident_bytes,
                        })
                    })
                    .collect(),
            ),
        ),
        ("chaos".to_string(), chaos_rows_to_json(chaos)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_baselines::{HmmConfig, HmmMatcher, HmmScratch, HmmSession};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::api::{MapMatcher, ScratchMatcher};
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::online::OnlineUpdate;

    #[test]
    fn interleave_preserves_per_session_order_and_total() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let sessions: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 30).into_iter().take(4).map(|s| s.sparse).collect();
        let events = interleave(&sessions, 99);
        let total: usize = sessions.iter().map(Trajectory::len).sum();
        assert_eq!(events.len(), total);
        let mut cursors = vec![0usize; sessions.len()];
        for &(sid, p) in &events {
            let sid = sid as usize;
            assert_eq!(p, sessions[sid].points[cursors[sid]], "session {sid} out of order");
            cursors[sid] += 1;
        }
        // Different seeds interleave differently (overwhelmingly likely).
        assert_ne!(events, interleave(&sessions, 100));
        // Remapped ids carry the same points in the same per-session order.
        let ids = skewed_session_ids(sessions.len(), 3);
        let skewed = interleave_ids(&sessions, &ids, 99);
        assert_eq!(skewed.len(), total);
        for (&(a, pa), &(b, pb)) in events.iter().zip(&skewed) {
            assert_eq!(ids[a as usize], b);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn skewed_ids_collide_modulo_threads() {
        let ids = skewed_session_ids(5, 4);
        assert_eq!(ids, vec![0, 4, 8, 12, 16]);
        assert!(ids.iter().all(|id| id % 4 == 0));
    }

    #[test]
    fn stream_rows_validate_against_offline() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let sessions: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 31).into_iter().take(4).map(|s| s.sparse).collect();
        let events = interleave(&sessions, 7);
        let rows = bench_streaming(&hmm, &sessions, &events, &[1, 2], Some(hmm.provider()));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.identical, "streamed {} diverged at {} threads", r.method, r.threads);
            assert_eq!(r.points as usize, events.len());
            assert!(r.points_per_s > 0.0);
            assert!(r.sessions_per_s > 0.0);
            assert!(r.p50_ms <= r.p99_ms + 1e-9);
            assert!(r.p99_ms <= r.p999_ms + 1e-9);
            assert!(r.p999_ms <= r.max_ms + 1e-9);
            assert!(r.mean_stable_lag >= 0.0);
            assert!(r.queue_depth_variance >= 0.0);
            assert_eq!(r.router, "power_of_two");
            assert_eq!(r.workload, "uniform");
            assert!(r.cache.is_some());
            assert!(r.allocs_avoided > 0, "workers must report arena reuse via RouterStats");
        }
        let s =
            crate::json::to_string_pretty(&stream_rows_to_json(&rows, &[], events.len(), "TINY"));
        assert!(s.contains("\"identical_to_offline\": true"));
        assert!(s.contains("\"p99_point_ms\":"));
        assert!(s.contains("\"p999_point_ms\":"));
        assert!(s.contains("\"max_point_ms\":"));
        assert!(s.contains("\"chaos\":"));
        assert!(s.contains("\"cache_hits\":"));
        assert!(s.contains("\"cache_warm_hits\":"));
        assert!(s.contains("\"allocs_avoided\":"));
        assert!(s.contains("\"router\": \"power_of_two\""));
        assert!(s.contains("\"queue_depth_variance\":"));
        assert!(s.contains("\"migrations\":"));
    }

    #[test]
    fn chaos_rows_lose_nothing() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let sessions: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 33).into_iter().take(4).map(|s| s.sparse).collect();
        let events = interleave(&sessions, 21);
        let row = bench_chaos(&hmm, &sessions, &events, 2, FaultPlan::panics(0xC4A05, 200, 3));
        assert_eq!(row.sessions_lost, 0, "chaos run lost sessions: {row:?}");
        assert!(row.identical, "chaos run diverged from offline: {row:?}");
        assert!(row.worker_restarts >= 1, "fault plan injected no panics: {row:?}");
        assert!(row.sessions_recovered >= 1);
        assert!(row.points >= row.streamed, "at-least-once delivery: {row:?}");
        assert!(row.mean_recovery_ms > 0.0);
        let s = crate::json::to_string_pretty(&chaos_rows_to_json(&[row]));
        assert!(s.contains("\"worker_restarts\":"));
        assert!(s.contains("\"sessions_lost\": 0"));
        assert!(s.contains("\"mean_recovery_ms\":"));
    }

    /// A decoder wrapper that sleeps per point, so worker queues actually
    /// build up and the routing imbalance becomes visible even on a fast
    /// or single-core host.
    struct Slow(HmmMatcher);

    impl MapMatcher for Slow {
        fn name(&self) -> &'static str {
            "SlowHMM"
        }

        fn match_trajectory(&self, traj: &Trajectory) -> trmma_traj::MatchResult {
            self.0.match_trajectory(traj)
        }
    }

    impl ScratchMatcher for Slow {
        type Scratch = HmmScratch;

        fn make_scratch(&self) -> HmmScratch {
            self.0.make_scratch()
        }

        fn match_trajectory_with(
            &self,
            scratch: &mut HmmScratch,
            traj: &Trajectory,
        ) -> trmma_traj::MatchResult {
            self.0.match_trajectory_with(scratch, traj)
        }
    }

    impl OnlineMatcher for Slow {
        type Session = HmmSession;

        fn begin_session(&self) -> HmmSession {
            self.0.begin_session()
        }

        fn push_point(
            &self,
            scratch: &mut HmmScratch,
            session: &mut HmmSession,
            point: GpsPoint,
        ) -> OnlineUpdate {
            std::thread::sleep(std::time::Duration::from_micros(200));
            self.0.push_point(scratch, session, point)
        }

        fn finalize(
            &self,
            scratch: &mut HmmScratch,
            session: HmmSession,
        ) -> trmma_traj::MatchResult {
            self.0.finalize(scratch, session)
        }

        fn session_len(&self, session: &HmmSession) -> usize {
            self.0.session_len(session)
        }

        fn session_watermark(&self, session: &HmmSession) -> usize {
            self.0.session_watermark(session)
        }

        fn snapshot_session(&self, session: &HmmSession, out: &mut Vec<u8>) {
            self.0.snapshot_session(session, out);
        }

        fn restore_session(&self, bytes: &[u8]) -> Result<HmmSession, trmma_traj::SnapshotError> {
            self.0.restore_session(bytes)
        }
    }

    #[test]
    fn skewed_arrivals_balance_better_under_power_of_two() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let slow = Arc::new(Slow(HmmMatcher::new(net, planner, HmmConfig::default())));
        let sessions: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 32).into_iter().take(6).map(|s| s.sparse).collect();
        let threads = 2;
        let ids = skewed_session_ids(sessions.len(), threads);
        let events = interleave_ids(&sessions, &ids, 13);
        let run = |policy| {
            bench_streaming_routed(
                &slow,
                &sessions,
                &ids,
                &events,
                &[threads],
                policy,
                "skewed",
                None,
            )
            .remove(0)
        };
        let hash = run(RouterPolicy::HashMod);
        let p2c = run(RouterPolicy::PowerOfTwo);
        assert!(hash.identical && p2c.identical);
        // Every skewed id hashes to worker 0: all queueing piles up there,
        // so the high-water-mark variance is strictly positive…
        assert!(hash.queue_depth_variance > 0.0, "hash router showed no imbalance: {hash:?}");
        // …while the load-aware router spreads the same arrivals.
        assert!(
            p2c.queue_depth_variance < hash.queue_depth_variance,
            "p2c variance {} not below hash_mod variance {}",
            p2c.queue_depth_variance,
            hash.queue_depth_variance
        );
    }
}
