//! Remote-ingest benchmark: replay the interleaved session corpus through
//! a real loopback TCP socket — `trmma_core::serve::Server` in front of the
//! `StreamEngine` — instead of calling `engine.push` in-process.
//!
//! What changes versus `stream_bench` is the measured quantity: the rows
//! here report **ack round-trip latency** (client `Push` frame → server
//! `Ack` frame, under a bounded inflight window), which is what a device
//! streaming over the wire actually observes — wire codec + admission +
//! engine decode + reply serialization, not just the worker-side decode.
//! Every run keeps the same acceptance bar as the in-process replay: each
//! session's `Final` result must be bitwise-identical to the offline
//! `match_trajectory` of the same points, and the row carries the
//! `identical` flag the binary asserts on.
//!
//! Produces the `"remote"` rows of `BENCH_streaming.json`.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use trmma_core::{BusyCode, Reply, ServeClient, ServeConfig, Server, SessionId, StreamOptions};
use trmma_traj::online::OnlineMatcher;
use trmma_traj::types::{GpsPoint, Trajectory};
use trmma_traj::MatchResult;

use crate::json::Value;

/// One measured remote (socket) streaming configuration.
#[derive(Debug, Clone)]
pub struct RemoteRow {
    /// The matcher measured.
    pub method: String,
    /// Concurrent sessions replayed over the connection.
    pub sessions: usize,
    /// Client-side inflight window (unacked pushes) during the replay.
    pub window: usize,
    /// Points acked by the server.
    pub points: u64,
    /// Acked points per second over the replay's wall clock.
    pub points_per_s: f64,
    /// Median ack round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile ack round-trip latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile ack round-trip latency, milliseconds.
    pub p999_ms: f64,
    /// Worst ack round trip observed, milliseconds.
    pub max_ms: f64,
    /// Typed `Busy` replies absorbed during the replay — expected 0 under
    /// the bench's permissive admission config.
    pub busy: u64,
    /// Bytes the server read off sockets during the run.
    pub bytes_in: u64,
    /// Bytes the server wrote to sockets during the run.
    pub bytes_out: u64,
    /// Request frames the server accepted.
    pub frames_in: u64,
    /// Whether every `Final` result matched the offline decode exactly.
    pub identical: bool,
}

/// Resolves one inbound reply against the send-time ledger: an `Ack` pops
/// the oldest outstanding push of its session and records the round trip;
/// a `Busy` discards the corresponding send (`PushTimeout` resolves the
/// oldest in-window push, admission codes the newest).
fn absorb_reply(
    reply: &Reply,
    sent: &mut HashMap<u64, VecDeque<Instant>>,
    rtts: &mut Vec<f64>,
    busy: &mut u64,
) {
    match reply {
        Reply::Ack { session, .. } => {
            let t0 = sent
                .get_mut(session)
                .and_then(VecDeque::pop_front)
                .expect("server acked a point that was never sent");
            rtts.push(t0.elapsed().as_secs_f64());
        }
        Reply::Busy { session, code } => {
            let pending = sent.get_mut(session).expect("busy for an unknown session");
            if *code == BusyCode::PushTimeout {
                pending.pop_front();
            } else {
                pending.pop_back();
            }
            *busy += 1;
        }
        r => panic!("unexpected reply during replay: {r:?}"),
    }
}

/// Replays `events` through a loopback `Server` and measures ack round-trip
/// latency under a bounded inflight window. `ids[i]` must be the stream id
/// of `sessions[i]` (as produced by `stream_bench::interleave_ids`).
///
/// # Panics
/// On any socket/protocol failure, or if the server refuses a frame — the
/// bench runs against its own permissively-configured server, so a typed
/// refusal is a harness bug, not a measurement.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn bench_remote<M: OnlineMatcher + 'static>(
    matcher: &Arc<M>,
    sessions: &[Trajectory],
    ids: &[SessionId],
    events: &[(SessionId, GpsPoint)],
    window: usize,
) -> RemoteRow {
    assert_eq!(sessions.len(), ids.len(), "one id per session");
    let window = window.max(1);
    // Offline reference, decoding each unique trajectory once (the corpus
    // tiles trajectories up to the session target).
    let mut reference: Vec<MatchResult> = Vec::with_capacity(sessions.len());
    for (i, t) in sessions.iter().enumerate() {
        match sessions[..i].iter().position(|u| u == t) {
            Some(j) => {
                let dup = reference[j].clone();
                reference.push(dup);
            }
            None => reference.push(matcher.match_trajectory(t)),
        }
    }
    // Permissive admission: the bench measures latency, not throttling, so
    // the server-side window must exceed the client's and rate limiting
    // stays off (the `ServeConfig` default).
    let cfg = ServeConfig::default()
        .stream(StreamOptions::with_threads(2).idle_timeout_s(0.0))
        .inflight_window(window * 2)
        .max_sessions_per_tenant(sessions.len().max(1));
    let server = Server::start(matcher.clone(), cfg).expect("loopback server starts");
    let mut client = ServeClient::connect(server.local_addr(), 7).expect("loopback connect");
    for (i, t) in sessions.iter().enumerate() {
        if !t.is_empty() {
            client.open(ids[i]).expect("open session");
        }
    }

    let mut sent: HashMap<u64, VecDeque<Instant>> = HashMap::new();
    let mut rtts: Vec<f64> = Vec::with_capacity(events.len());
    let mut busy = 0u64;
    let mut inflight = 0usize;
    let started = Instant::now();
    for &(sid, p) in events {
        while inflight >= window {
            let reply = client.recv_reply().expect("reply mid-replay");
            absorb_reply(&reply, &mut sent, &mut rtts, &mut busy);
            inflight -= 1;
        }
        client.push(sid, p).expect("push frame");
        sent.entry(sid).or_default().push_back(Instant::now());
        inflight += 1;
    }
    while inflight > 0 {
        let reply = client.recv_reply().expect("reply during drain");
        absorb_reply(&reply, &mut sent, &mut rtts, &mut busy);
        inflight -= 1;
    }
    let wall_s = started.elapsed().as_secs_f64();

    let mut finals: HashMap<SessionId, MatchResult> = HashMap::new();
    for (i, t) in sessions.iter().enumerate() {
        if t.is_empty() {
            continue;
        }
        let (points, result) = client.finalize(ids[i]).expect("finalize session");
        assert_eq!(points as usize, t.len(), "server acked a different point count");
        finals.insert(ids[i], result);
    }
    let identical = sessions
        .iter()
        .enumerate()
        .all(|(i, t)| t.is_empty() || finals.get(&ids[i]) == Some(&reference[i]));
    let stats = client.stats().expect("serve stats");
    server.stop();

    rtts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let quantile = |q: f64| -> f64 {
        if rtts.is_empty() {
            return 0.0;
        }
        let ix = ((rtts.len() - 1) as f64 * q).round() as usize;
        rtts[ix] * 1e3
    };
    RemoteRow {
        method: matcher.name().to_string(),
        sessions: sessions.len(),
        window,
        points: rtts.len() as u64,
        points_per_s: if wall_s > 0.0 { rtts.len() as f64 / wall_s } else { 0.0 },
        p50_ms: quantile(0.5),
        p99_ms: quantile(0.99),
        p999_ms: quantile(0.999),
        max_ms: quantile(1.0),
        busy,
        bytes_in: stats.bytes_in,
        bytes_out: stats.bytes_out,
        frames_in: stats.frames_in,
        identical,
    }
}

/// Serialises remote rows into the `"remote"` array of the
/// `BENCH_streaming.json` document.
#[must_use]
pub fn remote_rows_to_json(rows: &[RemoteRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|r| {
                crate::json!({
                    "method": r.method,
                    "transport": "loopback_tcp",
                    "sessions": r.sessions,
                    "window": r.window,
                    "points_acked": r.points,
                    "points_per_s": r.points_per_s,
                    "ack_p50_ms": r.p50_ms,
                    "ack_p99_ms": r.p99_ms,
                    "ack_p999_ms": r.p999_ms,
                    "ack_max_ms": r.max_ms,
                    "busy_replies": r.busy,
                    "bytes_in": r.bytes_in,
                    "bytes_out": r.bytes_out,
                    "frames_in": r.frames_in,
                    "identical_to_offline": r.identical,
                })
            })
            .collect(),
    )
}

/// Attaches the `"remote"` rows to the streaming JSON document.
pub fn attach_remote(doc: &mut Value, rows: &[RemoteRow]) {
    if let Value::Object(fields) = doc {
        fields.push(("remote".to_string(), remote_rows_to_json(rows)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_bench::{interleave, uniform_session_ids};
    use trmma_baselines::{HmmConfig, HmmMatcher};
    use trmma_roadnet::RoutePlanner;
    use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};
    use trmma_traj::MapMatcher;

    #[test]
    fn remote_rows_validate_against_offline() {
        let ds = build_dataset(&DatasetConfig::tiny());
        let net = Arc::new(ds.net.clone());
        let planner = Arc::new(RoutePlanner::untrained(&net));
        let hmm = Arc::new(HmmMatcher::new(net, planner, HmmConfig::default()));
        let sessions: Vec<Trajectory> =
            ds.samples(Split::Test, 0.2, 34).into_iter().take(3).map(|s| s.sparse).collect();
        let ids = uniform_session_ids(sessions.len());
        let events = interleave(&sessions, 11);
        let row = bench_remote(&hmm, &sessions, &ids, &events, 8);
        assert!(row.identical, "socket replay diverged from offline: {row:?}");
        assert_eq!(row.points as usize, events.len(), "every pushed point must be acked");
        assert_eq!(row.busy, 0, "permissive config must not throttle: {row:?}");
        assert!(row.points_per_s > 0.0);
        assert!(row.p50_ms <= row.p99_ms + 1e-9);
        assert!(row.p99_ms <= row.p999_ms + 1e-9);
        assert!(row.p999_ms <= row.max_ms + 1e-9);
        assert!(row.bytes_in > 0 && row.bytes_out > 0);
        assert!(row.frames_in as usize > events.len(), "opens + pushes + finalizes");
        assert_eq!(row.method, hmm.name());

        let mut doc = Value::Object(vec![]);
        attach_remote(&mut doc, &[row]);
        let s = crate::json::to_string_pretty(&doc);
        assert!(s.contains("\"remote\""));
        assert!(s.contains("\"transport\": \"loopback_tcp\""));
        assert!(s.contains("\"ack_p99_ms\":"));
        assert!(s.contains("\"identical_to_offline\": true"));
    }
}
