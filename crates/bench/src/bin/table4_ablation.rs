//! Table IV: ablation study of TRMMA, reporting recovery accuracy (%).
//!
//! Rows (paper nomenclature):
//! * `TRMMA`         — full system (MMA matcher, DualFormer, directions,
//!   candidate context);
//! * `TRMMA-HMM`     — matcher swapped for the classic HMM;
//! * `TRMMA-Near`    — matcher swapped for nearest-segment;
//! * `MMA+linear`    — MMA matching, linear interpolation instead of the
//!   learned decoder;
//! * `Nearest+linear`— nearest matching + linear interpolation;
//! * `TRMMA-DF`      — DualFormer fusion disabled (`H = R`);
//! * `TRMMA-C`       — candidate-context attention removed from MMA;
//! * `TRMMA-DI`      — directional cosine features removed from MMA.
//!
//! Expected shape: the full TRMMA tops every column; each ablation costs
//! accuracy.

use trmma_baselines::{HmmConfig, HmmMatcher, LinearRecovery, NearestMatcher};
use trmma_bench::harness::{eval_recovery, trained_mma, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_core::{MmaConfig, TrmmaConfig, TrmmaPipeline};
use trmma_traj::TrajectoryRecovery;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Table IV: TRMMA ablations (accuracy %) ==\n");
    let mut table = Table::new(&["Method", "Dataset", "Accuracy"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let eps = bundle.ds.epsilon_s;

        // Matchers.
        let mk_hmm =
            || HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let mk_near = || NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let (mma_full, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);
        let (mma_no_ctx, _) = trained_mma(
            &bundle,
            MmaConfig { use_candidate_context: false, ..cfg.mma_config() },
            cfg.epochs,
        );
        let (mma_no_dir, _) = trained_mma(
            &bundle,
            MmaConfig { use_direction: false, ..cfg.mma_config() },
            cfg.epochs,
        );
        let (mma_for_lin, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);

        // Recovery models.
        let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let (trmma_hmm, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let (trmma_near, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let (trmma_no_df, _) = trained_trmma(
            &bundle,
            TrmmaConfig { use_dualformer: false, ..cfg.trmma_config() },
            cfg.epochs,
        );
        let (trmma_c, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let (trmma_di, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);

        let methods: Vec<Box<dyn TrajectoryRecovery>> = vec![
            Box::new(TrmmaPipeline::new(Box::new(mma_full), trmma, "TRMMA")),
            Box::new(TrmmaPipeline::new(Box::new(mk_hmm()), trmma_hmm, "TRMMA-HMM")),
            Box::new(TrmmaPipeline::new(Box::new(mk_near()), trmma_near, "TRMMA-Near")),
            Box::new(LinearRecovery::new(bundle.net.clone(), mma_for_lin, "MMA+linear")),
            Box::new(LinearRecovery::new(bundle.net.clone(), mk_near(), "Nearest+linear")),
            Box::new(TrmmaPipeline::new(
                Box::new({
                    let (m, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);
                    m
                }),
                trmma_no_df,
                "TRMMA-DF",
            )),
            Box::new(TrmmaPipeline::new(Box::new(mma_no_ctx), trmma_c, "TRMMA-C")),
            Box::new(TrmmaPipeline::new(Box::new(mma_no_dir), trmma_di, "TRMMA-DI")),
        ];
        for m in &methods {
            let (metrics, _) = eval_recovery(&bundle.net, m.as_ref(), &bundle.test, eps);
            table.row(vec![
                m.name().into(),
                bundle.ds.name.clone(),
                format!("{:.2}", 100.0 * metrics.accuracy),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": m.name(),
                "accuracy": metrics.accuracy,
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Table IV): full TRMMA on top, every ablation below it.");
    write_json("table4_ablation", &trmma_bench::Value::Array(json));
}
