//! `trmma-artifacts` — build, inspect and verify the build-once binary
//! artifact image (`trmma_core::artifact`).
//!
//! ```text
//! trmma-artifacts build --out PATH [--smoke] [--shards N]
//!                                              prepare + train, write image
//! trmma-artifacts inspect PATH                 print the section table
//! trmma-artifacts verify PATH                  validate + materialize all
//! ```
//!
//! `build` prepares the dataset/model bundle exactly like the benchmark
//! binaries do (same `TRMMA_SCALE` / `TRMMA_EPOCHS` / `TRMMA_PROFILE` /
//! `TRMMA_DATASETS` environment knobs; `--smoke` switches to the tiny CI
//! dataset and one epoch) and packs the graph, the FMM distance table,
//! the trained MMA/TRMMA weights and the node2vec embeddings. With
//! `--shards N` the image additionally carries a `shards` section: the
//! grid-cut plan, one intra-shard distance table per tile and the
//! boundary overlay, each range CRC-guarded so a serving process can
//! verify shards lazily and stand the sharded network up zero-copy. The
//! other benchmark binaries then load the image with `--artifact PATH`
//! instead of re-deriving everything at startup.
//!
//! `verify` exits non-zero unless the image validates (magic, version,
//! total length, header CRC, every section CRC) *and* every section
//! materializes: the graph reconstructs with matching segment count, the
//! distance table serves from the slab, the embeddings parse, and every
//! weight blob is reachable by name.

use std::process::ExitCode;
use std::sync::Arc;

use trmma_baselines::HmmConfig;
use trmma_bench::artifacts::build_image;
use trmma_bench::harness::{trained_mma, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::Table;
use trmma_core::{Artifact, ArtifactError, SectionKind};
use trmma_traj::dataset::DatasetConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("inspect") => with_loaded(&args[1..], inspect),
        Some("verify") => with_loaded(&args[1..], verify),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trmma-artifacts <command>\n\
         \n\
         commands:\n\
         \x20 build --out PATH [--smoke] [--shards N]\n\
         \x20                             prepare dataset + models, write the artifact image\n\
         \x20 inspect PATH                print the validated section table\n\
         \x20 verify PATH                 validate the image and materialize every section"
    );
    ExitCode::from(2)
}

fn build(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let Some(out) = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)) else {
        eprintln!("build: missing --out PATH");
        return ExitCode::from(2);
    };
    let shards: Option<usize> = match args.iter().position(|a| a == "--shards") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => Some(n),
            _ => {
                eprintln!("build: --shards needs a positive tile count");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let cfg = ExpConfig::from_env();
    let dcfg = if smoke {
        DatasetConfig::tiny()
    } else {
        match cfg.dataset_configs().into_iter().next() {
            Some(d) => d,
            None => {
                eprintln!("build: TRMMA_DATASETS selected no dataset");
                return ExitCode::from(2);
            }
        }
    };
    let epochs = if smoke { 1 } else { cfg.epochs.min(3) };
    println!("preparing dataset {} (epochs {epochs})...", dcfg.name);
    let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
    let (mma, _) = trained_mma(&bundle, cfg.mma_config(), epochs);
    let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), epochs);
    let weights = [("mma", mma.save_weights()), ("trmma", trmma.save_weights())];
    let image = build_image(&bundle, &weights, HmmConfig::default().max_route_m, shards);
    let len = image.len();
    if let Err(e) = std::fs::write(out, image) {
        eprintln!("build: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {len} bytes ({} nodes, {} segments, dataset {}{})",
        bundle.net.num_nodes(),
        bundle.net.num_segments(),
        bundle.ds.name,
        shards.map_or_else(String::new, |n| format!(", {n} shards"))
    );
    ExitCode::SUCCESS
}

/// Reads and decodes the image at `args[0]`, then hands it to `f`.
fn with_loaded(args: &[String], f: fn(&Artifact) -> ExitCode) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("missing artifact PATH");
        return ExitCode::from(2);
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total = bytes.len();
    match Artifact::decode(bytes) {
        Ok(art) => {
            println!("{path}: {total} bytes, {} sections", art.sections().len());
            f(&art)
        }
        Err(e) => {
            eprintln!("{path}: invalid artifact: {e}");
            ExitCode::FAILURE
        }
    }
}

fn inspect(art: &Artifact) -> ExitCode {
    let mut table = Table::new(&["Kind", "Tag", "Offset", "Len", "CRC32"]);
    for s in art.sections() {
        let name = SectionKind::from_tag(s.kind).map_or("unknown", SectionKind::name);
        table.row(vec![
            name.to_string(),
            s.kind.to_string(),
            s.offset.to_string(),
            s.len.to_string(),
            format!("{:08x}", s.crc),
        ]);
    }
    table.print();
    match art.param_names() {
        Ok(names) if !names.is_empty() => println!("weight blobs: {}", names.join(", ")),
        Ok(_) => {}
        Err(e) => {
            eprintln!("params section unreadable: {e}");
            return ExitCode::FAILURE;
        }
    }
    match art.shards_meta() {
        Ok(meta) => println!(
            "shards: {} tiles over {} nodes, {} intra records + {} overlay (delta {})",
            meta.num_shards(),
            meta.shard_of.len(),
            meta.shard_counts.iter().sum::<usize>(),
            meta.overlay_count,
            meta.delta
        ),
        Err(ArtifactError::MissingSection(_)) => {}
        Err(e) => {
            eprintln!("shards section unreadable: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn verify(art: &Artifact) -> ExitCode {
    let net = match art.graph() {
        Ok(net) => {
            println!("graph: OK ({} nodes, {} segments)", net.num_nodes(), net.num_segments());
            Arc::new(net)
        }
        Err(e) => {
            eprintln!("graph: FAIL ({e})");
            return ExitCode::FAILURE;
        }
    };
    match art.dist_table() {
        Ok(t) => println!("dist_table: OK ({} records, delta {})", t.len(), t.delta()),
        Err(e) => {
            eprintln!("dist_table: FAIL ({e})");
            return ExitCode::FAILURE;
        }
    }
    match art.embeddings() {
        Ok(m) => {
            if m.rows() != net.num_segments() {
                eprintln!(
                    "embeddings: FAIL ({} rows for {} segments)",
                    m.rows(),
                    net.num_segments()
                );
                return ExitCode::FAILURE;
            }
            println!("embeddings: OK ({}x{})", m.rows(), m.cols());
        }
        Err(e) => {
            eprintln!("embeddings: FAIL ({e})");
            return ExitCode::FAILURE;
        }
    }
    match art.param_names() {
        Ok(names) => {
            for name in &names {
                if let Err(e) = art.params_blob(name) {
                    eprintln!("params {name:?}: FAIL ({e})");
                    return ExitCode::FAILURE;
                }
            }
            println!("params: OK ({} blobs)", names.len());
        }
        Err(e) => {
            eprintln!("params: FAIL ({e})");
            return ExitCode::FAILURE;
        }
    }
    match art.shards_meta() {
        Ok(meta) => {
            // The shards section checks per range: every intra table and
            // the overlay must serve (each range CRC-verified lazily), and
            // the whole sharded network must stand up against the graph.
            for shard in 0..u32::try_from(meta.num_shards()).expect("shard count fits u32") {
                if let Err(e) = art.shard_intra_table(shard) {
                    eprintln!("shards[{shard}]: FAIL ({e})");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = art.shards_overlay() {
                eprintln!("shards overlay: FAIL ({e})");
                return ExitCode::FAILURE;
            }
            match art.sharded_network(Arc::clone(&net)) {
                Ok(sh) => println!(
                    "shards: OK ({} tiles, {} overlay records)",
                    sh.num_shards(),
                    sh.overlay().len()
                ),
                Err(e) => {
                    eprintln!("shards network: FAIL ({e})");
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(ArtifactError::MissingSection(_)) => {}
        Err(e) => {
            eprintln!("shards: FAIL ({e})");
            return ExitCode::FAILURE;
        }
    }
    println!("verify: OK");
    ExitCode::SUCCESS
}
