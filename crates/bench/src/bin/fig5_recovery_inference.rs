//! Fig. 5: inference time per 1000 trajectory recoveries (seconds).
//!
//! Expected shape: TRMMA orders of magnitude faster than the full-network
//! seq2seq baseline (its decoder scores only the route's segments instead
//! of all |E|); interpolation baselines sit between, dominated by their
//! HMM matcher's Dijkstra transitions.

use std::sync::Arc;

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, LinearRecovery, NearestMatcher};
use trmma_bench::harness::{
    eval_recovery, eval_recovery_batch, per_1000, trained_mma, trained_seq2seq, trained_trmma,
    Bundle, ExpConfig,
};
use trmma_bench::report::{write_json, Table};
use trmma_core::{mma::SharedMma, BatchOptions, BatchRecovery, TrmmaPipeline};
use trmma_traj::TrajectoryRecovery;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 5: recovery inference time (s / 1000 trajectories) ==\n");
    let mut table = Table::new(&["Dataset", "Method", "s/1k", "Accuracy"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let eps = bundle.ds.epsilon_s;

        let near = NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let near_lin = LinearRecovery::new(bundle.net.clone(), near, "Nearest+Lin");
        let hmm = HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let hmm_lin = LinearRecovery::new(bundle.net.clone(), hmm, "HMM+Lin");
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let fmm_lin = LinearRecovery::new(bundle.net.clone(), fmm, "Linear");
        let (seq2seq, _) = trained_seq2seq(&bundle, cfg.seq2seq_config(), cfg.epochs.min(3));
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs.min(3));
        let mma = Arc::new(mma);
        let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs.min(3));
        let pipeline = TrmmaPipeline::new(Box::new(SharedMma(mma.clone())), trmma, "TRMMA");

        let methods: Vec<&dyn TrajectoryRecovery> =
            vec![&near_lin, &hmm_lin, &fmm_lin, &seq2seq, &pipeline];
        for m in methods {
            let (metrics, secs) = eval_recovery(&bundle.net, m, &bundle.test, eps);
            let s1k = per_1000(secs, bundle.test.len());
            table.row(vec![
                bundle.ds.name.clone(),
                m.name().into(),
                format!("{s1k:.3}"),
                format!("{:.2}", 100.0 * metrics.accuracy),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": m.name(),
                "sec_per_1000": s1k,
                "accuracy": metrics.accuracy,
            }));
        }

        // The batched engine over the same trained models: identical output,
        // all cores, per-worker scratch reuse.
        let (_, trmma) = pipeline.into_parts();
        let engine = BatchRecovery::new(mma, Arc::new(trmma), BatchOptions::default());
        let (metrics, secs) = eval_recovery_batch(&bundle.net, &engine, &bundle.test, eps);
        let s1k = per_1000(secs, bundle.test.len());
        table.row(vec![
            bundle.ds.name.clone(),
            "TRMMA (batch)".into(),
            format!("{s1k:.3}"),
            format!("{:.2}", 100.0 * metrics.accuracy),
        ]);
        json.push(trmma_bench::json!({
            "dataset": bundle.ds.name,
            "method": "TRMMA (batch)",
            "sec_per_1000": s1k,
            "accuracy": metrics.accuracy,
        }));
    }
    table.print();
    println!("\nExpected shape (paper Fig. 5): TRMMA much faster than Seq2SeqFull at equal-or-better accuracy; the batch engine divides TRMMA's time by roughly the core count.");
    write_json("fig5_recovery_inference", &trmma_bench::Value::Array(json));
}
