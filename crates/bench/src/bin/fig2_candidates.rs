//! Fig. 2: the ratio of GPS points whose ground-truth segment lies within
//! their top-kc nearest segments, for kc = 1..10.
//!
//! This is the empirical analysis motivating MMA's candidate-set
//! formulation: at kc = 1 the ratio is only ~0.7 (the nearest segment is
//! often the wrong one — typically the reverse lane), while by kc = 10 it
//! approaches 1.

use trmma_bench::harness::{Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_traj::api::CandidateFinder;

const MAX_KC: usize = 10;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 2: true-segment coverage of top-kc candidates ==\n");
    let mut table = Table::new(&[
        "Dataset", "kc=1", "kc=2", "kc=3", "kc=4", "kc=5", "kc=6", "kc=7", "kc=8", "kc=9", "kc=10",
    ]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, dcfg.default_gamma, 16);
        let finder = CandidateFinder::new(&bundle.net, MAX_KC);
        let mut hits = [0usize; MAX_KC];
        let mut total = 0usize;
        // "for every GPS point pi in every trajectory in D" — training split.
        for s in &bundle.train {
            for (p, truth) in s.sparse.points.iter().zip(&s.sparse_truth) {
                let cands = finder.candidates(p.pos);
                total += 1;
                if let Some(rank) = cands.iter().position(|c| c.seg == truth.seg) {
                    for h in hits.iter_mut().skip(rank) {
                        *h += 1;
                    }
                }
            }
        }
        let ratios: Vec<f64> = hits.iter().map(|&h| h as f64 / total.max(1) as f64).collect();
        let mut row = vec![bundle.ds.name.clone()];
        row.extend(ratios.iter().map(|r| format!("{r:.3}")));
        table.row(row);
        json.push(trmma_bench::json!({
            "dataset": bundle.ds.name,
            "total_points": total,
            "coverage_by_kc": ratios,
        }));
    }
    table.print();
    println!("\nExpected shape: ~0.7 at kc=1 rising towards 1.0 at kc=10 (paper Fig. 2).");
    write_json("fig2_candidates", &trmma_bench::Value::Array(json));
}
