//! `trmma-serve` — standalone network ingest front-end.
//!
//! Binds a `trmma_core::serve::Server` (the length-prefixed "TRMP" TCP
//! protocol, DESIGN.md §12) in front of a `StreamEngine` over a chosen
//! matcher and serves until killed, printing a `ServeStats` summary line
//! periodically. Rolling restart: a successor process sends a `Snapshot`
//! frame here, restores the drained sessions into its own instance, and
//! this process can then be stopped with zero dropped sessions (see the
//! README quickstart and `examples/ingest_client.rs`).
//!
//! ```text
//! trmma-serve [--addr HOST:PORT] [--method hmm|fmm|lhmm|mma] [--threads N]
//!             [--smoke] [--max-seconds S]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7717`; port 0 picks a
//!   free port and prints it).
//! * `--method` — the `OnlineMatcher` decoding every session (default
//!   `hmm`; `mma` trains the paper's model first, a few seconds at smoke
//!   scale).
//! * `--threads` — `StreamEngine` worker threads (default 2).
//! * `--smoke` — tiny synthetic dataset and a 2-second lifetime, the CI
//!   liveness check.
//! * `--max-seconds S` — exit after `S` seconds (default: run forever).
//!
//! Scale knobs `TRMMA_SCALE` / `TRMMA_PROFILE` / `TRMMA_DATASETS` select
//! the road network exactly as in the bench binaries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher};
use trmma_bench::harness::{trained_mma, Bundle, ExpConfig};
use trmma_core::{ServeConfig, Server, StreamOptions};
use trmma_traj::dataset::DatasetConfig;
use trmma_traj::online::OnlineMatcher;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Serves until the deadline (if any), printing one stats line per tick.
fn serve<M: OnlineMatcher + 'static>(matcher: Arc<M>, cfg: ServeConfig, deadline: Option<f64>) {
    let server = Server::start(matcher, cfg).expect("bind ingest address");
    println!("trmma-serve listening on {}", server.local_addr());
    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let done = deadline.is_some_and(|s| started.elapsed().as_secs_f64() >= s);
        if done || started.elapsed().as_millis() % 5000 < 500 {
            let s = server.stats();
            println!(
                "sessions open/final/restored {}/{}/{} | points {} | frames in/out {}/{} | \
                 busy {} refused {} | bytes in/out {}/{}",
                s.sessions_opened,
                s.sessions_finalized,
                s.sessions_restored,
                s.points_accepted,
                s.frames_in,
                s.frames_out,
                s.busy,
                s.refused,
                s.bytes_in,
                s.bytes_out,
            );
        }
        if done {
            break;
        }
    }
    server.stop();
    println!("trmma-serve: clean shutdown");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7717".to_string());
    let method = flag_value("--method").unwrap_or_else(|| "hmm".to_string());
    let threads: usize = flag_value("--threads").map_or(2, |v| v.parse().expect("--threads N"));
    let deadline: Option<f64> = flag_value("--max-seconds")
        .map(|v| v.parse().expect("--max-seconds S"))
        .or(if smoke { Some(2.0) } else { None });

    let cfg = ExpConfig::from_env();
    let dcfg = if smoke {
        DatasetConfig::tiny()
    } else {
        cfg.dataset_configs().into_iter().next().expect("at least one dataset selected")
    };
    let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
    println!("dataset {} | method {method} | {threads} engine threads", bundle.ds.name);

    let serve_cfg = ServeConfig::default()
        .addr(&addr)
        .stream(StreamOptions::with_threads(threads).idle_timeout_s(0.0));
    let hmm_cfg = HmmConfig::default();
    match method.as_str() {
        "hmm" => serve(
            Arc::new(HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg)),
            serve_cfg,
            deadline,
        ),
        "fmm" => serve(
            Arc::new(FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg)),
            serve_cfg,
            deadline,
        ),
        "lhmm" => serve(
            Arc::new(LhmmMatcher::fit(
                bundle.net.clone(),
                bundle.planner.clone(),
                hmm_cfg,
                &bundle.train,
            )),
            serve_cfg,
            deadline,
        ),
        "mma" => {
            let epochs = if smoke { 1 } else { cfg.epochs.min(3) };
            let (mma, _) = trained_mma(&bundle, cfg.mma_config(), epochs);
            serve(Arc::new(mma), serve_cfg, deadline);
        }
        m => panic!("unknown --method {m} (expected hmm|fmm|lhmm|mma)"),
    }
}
