//! Fig. 7: recovery accuracy under varied sparsity γ ∈ {0.1 … 0.5}.
//!
//! Smaller γ = sparser input (interval ε/γ). Expected shape: every
//! method's accuracy degrades as γ shrinks; TRMMA stays on top across the
//! whole sweep.

use trmma_baselines::{FmmMatcher, HmmConfig, LinearRecovery};
use trmma_bench::harness::{eval_recovery, trained_mma, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_core::TrmmaPipeline;

const GAMMAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 7: recovery accuracy vs sparsity gamma ==\n");
    let mut table = Table::new(&["Dataset", "Method", "g=0.1", "g=0.2", "g=0.3", "g=0.4", "g=0.5"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        // Train on a mix of sparsity levels — the sweep evaluates all of
        // them, and a γ=0.1-only model would face a distribution shift at
        // γ=0.5 (gap lengths are part of its decoder features).
        let mut bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let eps = bundle.ds.epsilon_s;
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let linear = LinearRecovery::new(bundle.net.clone(), fmm, "Linear");
        let mut mixed = bundle.train.clone();
        for g in [0.3, 0.5] {
            let (more, _) = bundle.resample(g);
            mixed.extend(more);
        }
        bundle.train = mixed;
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);
        let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let pipeline = TrmmaPipeline::new(Box::new(mma), trmma, "TRMMA");

        let mut rows: Vec<(String, Vec<f64>)> =
            vec![("Linear".into(), Vec::new()), ("TRMMA".into(), Vec::new())];
        for &gamma in &GAMMAS {
            let (_, test) = bundle.resample(gamma);
            let (m_lin, _) = eval_recovery(&bundle.net, &linear, &test, eps);
            let (m_trm, _) = eval_recovery(&bundle.net, &pipeline, &test, eps);
            rows[0].1.push(m_lin.accuracy);
            rows[1].1.push(m_trm.accuracy);
        }
        for (name, accs) in rows {
            let mut cells = vec![bundle.ds.name.clone(), name.clone()];
            cells.extend(accs.iter().map(|a| format!("{:.3}", a)));
            table.row(cells);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": name,
                "gammas": GAMMAS,
                "accuracy": accs,
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Fig. 7): accuracy rises with gamma; TRMMA dominates at every gamma.");
    write_json("fig7_sparsity", &trmma_bench::Value::Array(json));
}
