//! Fig. 11: map-matching F1 under varied sparsity γ ∈ {0.1 … 0.5}.
//!
//! Expected shape: all matchers degrade as trajectories get sparser; MMA
//! leads at every sparsity level.

use trmma_baselines::{FmmMatcher, HmmConfig, NearestMatcher};
use trmma_bench::harness::{eval_matching, trained_mma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_traj::MapMatcher;

const GAMMAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 11: matching F1 vs sparsity gamma ==\n");
    let mut table = Table::new(&["Dataset", "Method", "g=0.1", "g=0.2", "g=0.3", "g=0.4", "g=0.5"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let mut bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let nearest = NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        // The sweep evaluates every sparsity level, so train on a mix of
        // them (the paper's protocol sweeps γ for all methods; a model
        // trained only at γ = 0.1 would face an input-distribution shift at
        // γ = 0.5).
        let mut mixed = bundle.train.clone();
        for g in [0.3, 0.5] {
            let (more, _) = bundle.resample(g);
            mixed.extend(more);
        }
        bundle.train = mixed;
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);

        let methods: Vec<&dyn MapMatcher> = vec![&nearest, &fmm, &mma];
        for m in methods {
            let mut f1s = Vec::new();
            for &gamma in &GAMMAS {
                let (_, test) = bundle.resample(gamma);
                let (metrics, _) = eval_matching(m, &test);
                f1s.push(metrics.f1);
            }
            let mut cells = vec![bundle.ds.name.clone(), m.name().into()];
            cells.extend(f1s.iter().map(|f| format!("{f:.3}")));
            table.row(cells);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": m.name(),
                "gammas": GAMMAS,
                "f1": f1s,
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Fig. 11): F1 rises with gamma; MMA best across the sweep.");
    write_json("fig11_matching_sparsity", &trmma_bench::Value::Array(json));
}
