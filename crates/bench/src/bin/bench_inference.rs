//! Batched-inference throughput benchmark (`BENCH_inference.json`).
//!
//! Trains small MMA/TRMMA models once, then sweeps the batch engine over
//! thread counts for both tasks, validating every parallel run against the
//! sequential output. Writes `BENCH_inference.json` to the repository root
//! (the committed perf trajectory) and an artifact copy under
//! `target/experiments/`.
//!
//! Scale knobs: the usual `TRMMA_SCALE` / `TRMMA_EPOCHS` / `TRMMA_PROFILE`
//! environment variables, plus `TRMMA_BENCH_REPEATS` (default 3 — each
//! configuration keeps its best-throughput run).

use std::sync::Arc;

use trmma_bench::batch_bench::{
    bench_matching, bench_recovery, default_thread_counts, rows_to_json, InferenceRow,
};
use trmma_bench::harness::{trained_mma, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::{write_bench_inference, write_json, Table};

fn main() {
    let cfg = ExpConfig::from_env();
    let repeats: usize =
        std::env::var("TRMMA_BENCH_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    println!("== Batched inference: throughput vs thread count ==\n");

    let dcfg = cfg.dataset_configs().into_iter().next().expect("at least one dataset selected");
    let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
    let eps = bundle.ds.epsilon_s;
    let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs.min(3));
    let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs.min(3));
    let mma = Arc::new(mma);
    let trmma = Arc::new(trmma);

    // Benchmark over the test sparse trajectories, tiled up so the batch is
    // large enough to keep every worker busy.
    let mut batch: Vec<_> = bundle.test.iter().map(|s| s.sparse.clone()).collect();
    assert!(!batch.is_empty(), "dataset {} produced no test trajectories", bundle.ds.name);
    while batch.len() < 96 {
        let again: Vec<_> = batch.iter().take(96 - batch.len()).cloned().collect();
        batch.extend(again);
    }
    let threads = default_thread_counts();
    println!(
        "dataset {} | batch {} trajectories | threads {threads:?} | repeats {repeats}\n",
        bundle.ds.name,
        batch.len()
    );

    let mut rows = bench_matching(&mma, &batch, &threads, repeats);
    rows.extend(bench_recovery(&mma, &trmma, &batch, eps, &threads, repeats));

    let mut table = Table::new(&[
        "Task",
        "Mode",
        "Threads",
        "traj/s",
        "p50(ms)",
        "p99(ms)",
        "Speedup",
        "Identical",
    ]);
    for r in &rows {
        table.row(vec![
            r.task.clone(),
            r.mode.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.traj_per_s),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.2}x", r.speedup),
            r.identical.to_string(),
        ]);
    }
    table.print();

    let diverged: Vec<&InferenceRow> = rows.iter().filter(|r| !r.identical).collect();
    assert!(diverged.is_empty(), "parallel output diverged from sequential: {diverged:?}");
    let best = |task: &str| -> f64 {
        rows.iter().filter(|r| r.task == task).map(|r| r.speedup).fold(0.0, f64::max)
    };
    println!(
        "\nbest speedup: matching {:.2}x, recovery {:.2}x (vs the sequential per-call API)",
        best("matching"),
        best("recovery")
    );

    let doc = rows_to_json(&rows, batch.len(), &bundle.ds.name);
    write_bench_inference(&doc);
    write_json("bench_inference", &doc);
}
