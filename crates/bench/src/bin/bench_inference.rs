//! Batched-inference throughput benchmark (`BENCH_inference.json`).
//!
//! Trains small MMA/TRMMA models once, then sweeps the batch engine over
//! thread counts for both tasks — plus the HMM-family baselines (HMM, FMM,
//! LHMM) through the pooled fan-out (`par_match_pooled`, one warm
//! `SsspPool` per worker) — validating every parallel run against the
//! sequential output. Writes `BENCH_inference.json` to the repository root
//! (the committed perf trajectory) and an artifact copy under
//! `target/experiments/`.
//!
//! Pass `--artifact PATH` to start from a `trmma-artifacts build` image
//! instead of re-deriving everything: the network and node2vec embeddings
//! are served from the image, the MMA/TRMMA weights are loaded instead of
//! trained, and FMM adopts the image's distance table zero-copy. With or
//! without the flag, the binary measures both cold-start paths to a
//! query-ready distance table (in-process `DistTable::build` versus
//! validating and serving the image) and records them under
//! `"cold_start"` in the JSON document; full runs assert the artifact
//! path is at least 10× faster and bitwise-identical.
//!
//! Scale knobs: the usual `TRMMA_SCALE` / `TRMMA_EPOCHS` / `TRMMA_PROFILE`
//! environment variables, plus `TRMMA_BENCH_REPEATS` (default 3 — each
//! configuration keeps its best-throughput run). Pass `--smoke` for the CI
//! profile: tiny dataset, two repeats (best kept), threads {1, 2}, artifact
//! copy only (the committed repo-root file is left untouched). Pass
//! `--assert-tail-ratio R` to fail the run if any engine row's p99/p50
//! per-trajectory latency ratio exceeds `R` — the CI guard that keeps the
//! warm-start/arena tail-latency work from regressing.
//!
//! Pass `--shards N` to additionally sweep every matcher on a grid-cut
//! [`trmma_roadnet::ShardedNetwork`] (per-shard R-trees, intra-shard
//! distance tables, boundary overlay): the same rows are measured again
//! with `"variant": "sharded"`, each carrying total and per-shard
//! resident-bytes accounting next to the monolithic rows' whole-R-tree +
//! UBODT footprint, so throughput and memory can be compared directly in
//! the committed document. When `--artifact` is also given and the image
//! packs a `shards` section, the sharded network is served zero-copy from
//! the image instead of rebuilt.

use std::sync::Arc;

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher};
use trmma_bench::artifacts::{
    attach_cold_start, bench_cold_start, build_image, build_sharded, prepare_from_artifact,
};
use trmma_bench::batch_bench::{
    bench_baseline_matching, bench_matching, bench_recovery, default_thread_counts, rows_to_json,
    tag_variant, InferenceRow,
};
use trmma_bench::harness::{trained_mma, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::{write_bench_inference, write_json, Table};
use trmma_core::{Artifact, Mma, MmaConfig, Trmma};
use trmma_roadnet::transition::DIST_RECORD_BYTES;
use trmma_roadnet::{monolithic_resident_bytes, ShardedNetwork};
use trmma_traj::dataset::DatasetConfig;

/// The decoded image and its raw bytes (kept for the cold-start replay),
/// when `--artifact PATH` was given.
fn load_artifact() -> Option<(Artifact, Vec<u8>)> {
    let args: Vec<String> = std::env::args().collect();
    let path = args.iter().position(|a| a == "--artifact").and_then(|i| args.get(i + 1))?;
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("cannot read artifact {path}: {e}"));
    let art =
        Artifact::decode(bytes.clone()).unwrap_or_else(|e| panic!("invalid artifact {path}: {e}"));
    Some((art, bytes))
}

/// The `--assert-tail-ratio R` bound, when given.
fn tail_ratio_bound() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--assert-tail-ratio")?;
    let v = args.get(i + 1).expect("--assert-tail-ratio needs a value");
    Some(v.parse().unwrap_or_else(|e| panic!("--assert-tail-ratio {v}: {e}")))
}

/// The `--shards N` tile count, when given.
fn shards_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--shards")?;
    let v = args.get(i + 1).expect("--shards needs a value");
    let n: usize = v.parse().unwrap_or_else(|e| panic!("--shards {v}: {e}"));
    assert!(n > 0, "--shards must be at least 1");
    Some(n)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let artifact = load_artifact();
    let shards_n = shards_arg();
    let cfg = ExpConfig::from_env();
    // Smoke keeps 2 repeats (not 1): best-of-2 discards a run that caught
    // a scheduler stall, which otherwise lands straight in p99 of a
    // 24-trajectory batch and trips the CI tail bound spuriously.
    let repeats: usize = if smoke {
        2
    } else {
        std::env::var("TRMMA_BENCH_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
    };
    println!("== Batched inference: throughput vs thread count ==\n");

    let dcfg = if smoke {
        DatasetConfig::tiny()
    } else {
        cfg.dataset_configs().into_iter().next().expect("at least one dataset selected")
    };
    let bundle = match &artifact {
        Some((art, _)) => prepare_from_artifact(&dcfg, 0.1, art)
            .expect("artifact was built for a different dataset (TRMMA_* knobs must match)"),
        None => Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0),
    };
    let eps = bundle.ds.epsilon_s;
    let epochs = if smoke { 1 } else { cfg.epochs.min(3) };
    let (mma, trmma) = match &artifact {
        Some((art, _)) => {
            let mcfg = MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() };
            let mut mma = Mma::new(
                bundle.net.clone(),
                bundle.planner.clone(),
                Some(bundle.node2vec.clone()),
                mcfg,
            );
            mma.load_weights(art.params_blob("mma").expect("artifact stores mma weights"))
                .expect("mma weights fit the current profile");
            let mut trmma = Trmma::new(bundle.net.clone(), cfg.trmma_config());
            trmma
                .load_weights(art.params_blob("trmma").expect("artifact stores trmma weights"))
                .expect("trmma weights fit the current profile");
            (mma, trmma)
        }
        None => {
            let (mma, _) = trained_mma(&bundle, cfg.mma_config(), epochs);
            let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), epochs);
            (mma, trmma)
        }
    };

    // Cold start: both paths to a query-ready distance table, bitwise
    // identity enforced. Without `--artifact` the image is packed in
    // memory from the prepared bundle — the timings measure the same
    // validate-and-serve path either way.
    let hmm_cfg = HmmConfig::default();
    let image = match &artifact {
        Some((_, bytes)) => bytes.clone(),
        None => {
            let weights = [("mma", mma.save_weights()), ("trmma", trmma.save_weights())];
            build_image(&bundle, &weights, hmm_cfg.max_route_m, None)
        }
    };
    let cold = bench_cold_start(&bundle.net, hmm_cfg.max_route_m, image);

    let mma = Arc::new(mma);
    let trmma = Arc::new(trmma);
    let hmm = HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg.clone());
    let fmm = match &artifact {
        Some((art, _)) => FmmMatcher::with_table(
            bundle.net.clone(),
            bundle.planner.clone(),
            hmm_cfg.clone(),
            Arc::new(art.dist_table().expect("artifact stores a dist table")),
        ),
        None => FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg.clone()),
    };
    let lhmm = LhmmMatcher::fit(
        bundle.net.clone(),
        bundle.planner.clone(),
        hmm_cfg.clone(),
        &bundle.train,
    );

    // Benchmark over the test sparse trajectories, tiled up so the batch is
    // large enough to keep every worker busy.
    let target = if smoke { 24 } else { 96 };
    let mut batch: Vec<_> = bundle.test.iter().map(|s| s.sparse.clone()).collect();
    assert!(!batch.is_empty(), "dataset {} produced no test trajectories", bundle.ds.name);
    while batch.len() < target {
        let again: Vec<_> = batch.iter().take(target - batch.len()).cloned().collect();
        batch.extend(again);
    }
    let threads = if smoke {
        vec![1, 2]
    } else {
        let mut t = default_thread_counts();
        // On a single-core host still record a 2-thread row: it cannot beat
        // 1× but it exercises the parallel path and keeps the scaling-row
        // schema stable across hosts.
        if t == [1] {
            t.push(2);
        }
        t
    };
    println!(
        "dataset {} | batch {} trajectories | threads {threads:?} | repeats {repeats} | models {}\n",
        bundle.ds.name,
        batch.len(),
        if artifact.is_some() { "loaded from artifact" } else { "trained in-process" }
    );

    // The monolithic deployment's footprint: one whole-network R-tree plus
    // FMM's UBODT table (HMM/LHMM grow a dynamic cache instead; the table
    // is the bound every variant's transition oracle answers under).
    let mono_resident =
        monolithic_resident_bytes(&bundle.net, None) + fmm.table_len() * DIST_RECORD_BYTES;
    let mut rows = bench_matching(&mma, &batch, &threads, repeats);
    rows.extend(bench_recovery(&mma, &trmma, &batch, eps, &threads, repeats));
    rows.extend(bench_baseline_matching(&hmm, &batch, &threads, repeats, Some(hmm.provider())));
    rows.extend(bench_baseline_matching(&fmm, &batch, &threads, repeats, Some(fmm.provider())));
    rows.extend(bench_baseline_matching(&lhmm, &batch, &threads, repeats, Some(lhmm.provider())));
    let mut rows = tag_variant(rows, "monolithic", mono_resident, None);

    // The sharded sweep: the same matchers, decoding through per-shard
    // R-trees and intra tables stitched by the boundary overlay. Served
    // from the artifact's `shards` section when it has one, else built
    // in-process with the harness-wide grid cut.
    if let Some(n) = shards_n {
        let sharded: Arc<ShardedNetwork> = match &artifact {
            Some((art, _)) if art.shards_meta().is_ok() => {
                let sh = art
                    .sharded_network(bundle.net.clone())
                    .expect("artifact shards section materializes");
                assert_eq!(
                    sh.num_shards(),
                    n,
                    "--shards {n} but the artifact packs a different tile count"
                );
                println!("sharded network served from the artifact image ({n} shards)");
                Arc::new(sh)
            }
            _ => Arc::new(build_sharded(&bundle.net, n, hmm_cfg.max_route_m)),
        };
        let shard_resident: Vec<usize> =
            sharded.shard_stats().iter().map(|s| s.resident_bytes).collect();
        let total_resident = sharded.resident_bytes();
        println!(
            "sharded: {n} tiles | resident {:.2} MB across shards (+overlay) vs {:.2} MB monolithic\n",
            total_resident as f64 / 1e6,
            mono_resident as f64 / 1e6
        );

        let mcfg = MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() };
        let mut mma_sh = Mma::sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            Some(bundle.node2vec.clone()),
            mcfg,
        );
        mma_sh
            .load_weights(&mma.save_weights())
            .expect("the monolithic model's weights fit the sharded instance");
        let mma_sh = Arc::new(mma_sh);
        let hmm_sh =
            HmmMatcher::sharded(Arc::clone(&sharded), bundle.planner.clone(), hmm_cfg.clone());
        let fmm_sh =
            FmmMatcher::sharded(Arc::clone(&sharded), bundle.planner.clone(), hmm_cfg.clone());
        let lhmm_sh = LhmmMatcher::fit_sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            hmm_cfg.clone(),
            &bundle.train,
        );

        let mut srows = bench_matching(&mma_sh, &batch, &threads, repeats);
        srows.extend(bench_recovery(&mma_sh, &trmma, &batch, eps, &threads, repeats));
        srows.extend(bench_baseline_matching(
            &hmm_sh,
            &batch,
            &threads,
            repeats,
            Some(hmm_sh.provider()),
        ));
        srows.extend(bench_baseline_matching(
            &fmm_sh,
            &batch,
            &threads,
            repeats,
            Some(fmm_sh.provider()),
        ));
        srows.extend(bench_baseline_matching(
            &lhmm_sh,
            &batch,
            &threads,
            repeats,
            Some(lhmm_sh.provider()),
        ));
        rows.extend(tag_variant(srows, "sharded", total_resident, Some(shard_resident)));
    }

    let mut table = Table::new(&[
        "Task",
        "Method",
        "Mode",
        "Variant",
        "Threads",
        "traj/s",
        "p50(ms)",
        "p99(ms)",
        "Speedup",
        "Identical",
        "Res(MB)",
        "Cache h/m",
    ]);
    for r in &rows {
        table.row(vec![
            r.task.clone(),
            r.method.clone(),
            r.mode.clone(),
            r.variant.clone(),
            r.threads.to_string(),
            format!("{:.1}", r.traj_per_s),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.2}x", r.speedup),
            r.identical.to_string(),
            r.resident_bytes.map_or_else(|| "-".to_string(), |b| format!("{:.2}", b as f64 / 1e6)),
            r.cache.map_or_else(|| "-".to_string(), |c| format!("{}/{}", c.hits, c.misses)),
        ]);
    }
    table.print();

    let mut ctable = Table::new(&["ColdStart", "ms", "Speedup", "Identical", "Records"]);
    for r in &cold {
        ctable.row(vec![
            r.source.clone(),
            format!("{:.3}", r.cold_start_ms),
            format!("{:.1}x", r.speedup),
            r.identical.to_string(),
            r.table_records.to_string(),
        ]);
    }
    println!("\n== Cold start: in-process build vs artifact load ==\n");
    ctable.print();
    for r in &cold {
        assert!(r.identical, "cold-start path {} diverged from the built table", r.source);
    }
    if !smoke {
        let load = cold.iter().find(|r| r.source == "artifact_load").expect("artifact row");
        assert!(
            load.speedup >= 10.0,
            "artifact cold start only {:.1}x faster than DistTable::build",
            load.speedup
        );
    }

    let diverged: Vec<&InferenceRow> = rows.iter().filter(|r| !r.identical).collect();
    assert!(diverged.is_empty(), "parallel output diverged from sequential: {diverged:?}");

    // Tail health: the worst p99/p50 ratio across the engine rows, and the
    // optional CI bound on it.
    let worst_tail = rows
        .iter()
        .filter(|r| r.mode == "batch_engine" && r.p50_ms > 0.0)
        .map(|r| (r.p99_ms / r.p50_ms, r))
        .fold(None::<(f64, &InferenceRow)>, |acc, cur| match acc {
            Some(a) if a.0 >= cur.0 => Some(a),
            _ => Some(cur),
        });
    if let Some((ratio, r)) = worst_tail {
        println!(
            "\nworst engine tail: p99/p50 = {ratio:.2} ({} {} {} at {} threads)",
            r.task, r.method, r.variant, r.threads
        );
        if let Some(bound) = tail_ratio_bound() {
            assert!(
                ratio <= bound,
                "tail regression: {} {} {} at {} threads has p99/p50 = {ratio:.2} > {bound} \
                 (p50 {:.3}ms, p99 {:.3}ms)",
                r.task,
                r.method,
                r.variant,
                r.threads,
                r.p50_ms,
                r.p99_ms
            );
            println!("tail bound OK: {ratio:.2} <= {bound}");
        }
    }
    let best = |method: &str| -> f64 {
        rows.iter().filter(|r| r.method == method).map(|r| r.speedup).fold(0.0, f64::max)
    };
    println!(
        "\nbest speedup: MMA {:.2}x, MMA+TRMMA {:.2}x, HMM {:.2}x, FMM {:.2}x, LHMM {:.2}x (vs the sequential per-call API)",
        best("MMA"),
        best("MMA+TRMMA"),
        best("HMM"),
        best("FMM"),
        best("LHMM")
    );
    if shards_n.is_some() {
        // Per-method sequential throughput of the two variants side by
        // side: what sharding costs (or saves) before the engine's
        // parallelism enters the picture.
        let seq = |variant: &str, method: &str| -> f64 {
            rows.iter()
                .filter(|r| {
                    r.variant == variant && r.method == method && r.mode == "sequential_api"
                })
                .map(|r| r.traj_per_s)
                .fold(0.0, f64::max)
        };
        println!("\nsharded vs monolithic sequential throughput (traj/s):");
        for method in ["MMA", "MMA+TRMMA", "HMM", "FMM", "LHMM"] {
            let (m, s) = (seq("monolithic", method), seq("sharded", method));
            if m > 0.0 && s > 0.0 {
                println!("  {method:10} {m:10.1} -> {s:10.1}  ({:.2}x)", s / m);
            }
        }
    }

    let mut doc = rows_to_json(&rows, batch.len(), &bundle.ds.name);
    attach_cold_start(&mut doc, &cold);
    if smoke {
        println!("\n--smoke: repo-root BENCH_inference.json left untouched");
    } else {
        write_bench_inference(&doc);
    }
    write_json("bench_inference", &doc);
}
