//! Fig. 6: training time per epoch of the learned recovery methods.
//!
//! Expected shape: TRMMA trains much faster per epoch than the
//! full-network seq2seq baseline — the loss of Eq. 19 touches only the
//! `ℓ_R` route segments per missing point, whereas the baseline's softmax
//! touches all `|E|` segments.

use trmma_bench::harness::{trained_seq2seq, trained_trmma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 6: recovery training time per epoch (s) ==\n");
    let mut table = Table::new(&["Dataset", "Method", "s/epoch", "final loss", "#weights"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let (seq2seq, rep_s) = trained_seq2seq(&bundle, cfg.seq2seq_config(), cfg.epochs);
        let (trmma, rep_t) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        for (name, rep, weights) in
            [("Seq2SeqFull", &rep_s, seq2seq.num_weights()), ("TRMMA", &rep_t, trmma.num_weights())]
        {
            table.row(vec![
                bundle.ds.name.clone(),
                name.into(),
                format!("{:.2}", rep.mean_epoch_time_s()),
                format!("{:.4}", rep.final_loss()),
                weights.to_string(),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": name,
                "sec_per_epoch": rep.mean_epoch_time_s(),
                "epoch_losses": rep.epoch_losses,
                "num_weights": weights,
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Fig. 6): TRMMA trains faster per epoch than the |E|-softmax baseline.");
    write_json("fig6_recovery_training", &trmma_bench::Value::Array(json));
}
