//! Table II: dataset statistics.
//!
//! Prints, for each synthetic dataset, the same rows the paper reports for
//! PT / XA / BJ / CD: trajectory count, ε, average points, average length,
//! average travel time, network size and area.

use trmma_bench::harness::ExpConfig;
use trmma_bench::report::{write_json, Table};
use trmma_traj::dataset::build_dataset;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Table II: dataset statistics (scale {:.2}) ==\n", cfg.scale);
    let mut table = Table::new(&[
        "Dataset",
        "#traj",
        "eps(s)",
        "avg#pts",
        "avgLen(m)",
        "avgTime(s)",
        "#segs",
        "#nodes",
        "area(km2)",
    ]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let ds = build_dataset(&dcfg);
        let s = ds.stats();
        table.row(vec![
            ds.name.clone(),
            s.n_trajectories.to_string(),
            format!("{:.0}", s.epsilon_s),
            format!("{:.2}", s.avg_points),
            format!("{:.1}", s.avg_length_m),
            format!("{:.1}", s.avg_travel_time_s),
            s.n_segments.to_string(),
            s.n_intersections.to_string(),
            format!("{:.2}", s.area_km2),
        ]);
        json.push(trmma_bench::json!({
            "dataset": ds.name,
            "n_trajectories": s.n_trajectories,
            "epsilon_s": s.epsilon_s,
            "avg_points": s.avg_points,
            "avg_length_m": s.avg_length_m,
            "avg_travel_time_s": s.avg_travel_time_s,
            "n_segments": s.n_segments,
            "n_intersections": s.n_intersections,
            "area_km2": s.area_km2,
        }));
    }
    table.print();
    write_json("table2_datasets", &trmma_bench::Value::Array(json));
}
