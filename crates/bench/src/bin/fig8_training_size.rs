//! Fig. 8: recovery accuracy vs amount of training data (% of the train
//! split).
//!
//! `Linear` needs no training and serves as the flat benchmark line.
//! Expected shape: TRMMA improves with more data and overtakes `Linear`
//! after a few percent of the corpus (paper: 1–3 %; here the corpus is
//! smaller so the crossover shifts right).

use trmma_baselines::{FmmMatcher, HmmConfig, LinearRecovery};
use trmma_bench::harness::{eval_recovery, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_core::{Mma, Trmma, TrmmaPipeline};

const FRACTIONS: [f64; 5] = [0.05, 0.2, 0.4, 0.7, 1.0];

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 8: recovery accuracy vs training-data fraction ==\n");
    let mut table = Table::new(&["Dataset", "Method", "5%", "20%", "40%", "70%", "100%"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let eps = bundle.ds.epsilon_s;
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let linear = LinearRecovery::new(bundle.net.clone(), fmm, "Linear");
        let (lin_metrics, _) = eval_recovery(&bundle.net, &linear, &bundle.test, eps);

        let mut trmma_accs = Vec::new();
        for &frac in &FRACTIONS {
            let take = ((bundle.train.len() as f64) * frac).ceil().max(1.0) as usize;
            let subset = &bundle.train[..take.min(bundle.train.len())];
            let mut mma = Mma::new(
                bundle.net.clone(),
                bundle.planner.clone(),
                Some(bundle.node2vec.clone()),
                trmma_core::MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() },
            );
            mma.train(subset, cfg.epochs);
            let mut model = Trmma::new(bundle.net.clone(), cfg.trmma_config());
            model.train(subset, cfg.epochs);
            let pipeline = TrmmaPipeline::new(Box::new(mma), model, "TRMMA");
            let (m, _) = eval_recovery(&bundle.net, &pipeline, &bundle.test, eps);
            trmma_accs.push(m.accuracy);
        }

        let mut lin_row = vec![bundle.ds.name.clone(), "Linear".into()];
        lin_row.extend(FRACTIONS.iter().map(|_| format!("{:.3}", lin_metrics.accuracy)));
        table.row(lin_row);
        let mut trm_row = vec![bundle.ds.name.clone(), "TRMMA".into()];
        trm_row.extend(trmma_accs.iter().map(|a| format!("{a:.3}")));
        table.row(trm_row);
        json.push(trmma_bench::json!({
            "dataset": bundle.ds.name,
            "fractions": FRACTIONS,
            "linear_accuracy": lin_metrics.accuracy,
            "trmma_accuracy": trmma_accs,
        }));
    }
    table.print();
    println!(
        "\nExpected shape (paper Fig. 8): TRMMA rises with data and crosses the flat Linear line."
    );
    write_json("fig8_training_size", &trmma_bench::Value::Array(json));
}
