//! Table V: map-matching quality (Precision, Recall, F1, Jaccard in %).
//!
//! Methods: Nearest, HMM, FMM, LHMM (fitted-parameter HMM surrogate) and
//! MMA. Expected shape: MMA best on every metric; FMM ≈ HMM (same model,
//! different oracle); LHMM ≥ HMM (parameters fitted to the corpus);
//! Nearest worst.
//!
//! Every row runs through the pooled batch engine (`par_match_pooled`) —
//! quality numbers are identical to the sequential loop by the engine's
//! determinism contract, and the s/1k column is the parallel wall-clock.

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher, NearestMatcher};
use trmma_bench::harness::{eval_matching_pooled, per_1000, trained_mma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_core::BatchOptions;
use trmma_traj::{MapMatcher, MatchingMetrics};

fn main() {
    let cfg = ExpConfig::from_env();
    let opts = BatchOptions::default();
    println!("== Table V: map-matching quality ==\n");
    let mut table =
        Table::new(&["Dataset", "Method", "Precision", "Recall", "F1", "Jaccard", "s/1k"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let nearest = NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let hmm = HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let lhmm = LhmmMatcher::fit(
            bundle.net.clone(),
            bundle.planner.clone(),
            HmmConfig::default(),
            &bundle.train,
        );
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);

        let rows: Vec<(&str, MatchingMetrics, f64)> = vec![
            (nearest.name(), eval_matching_pooled(&nearest, &bundle.test, opts)),
            (hmm.name(), eval_matching_pooled(&hmm, &bundle.test, opts)),
            (fmm.name(), eval_matching_pooled(&fmm, &bundle.test, opts)),
            (lhmm.name(), eval_matching_pooled(&lhmm, &bundle.test, opts)),
            (mma.name(), eval_matching_pooled(&mma, &bundle.test, opts)),
        ]
        .into_iter()
        .map(|(name, (metrics, secs))| (name, metrics, secs))
        .collect();
        for (name, metrics, secs) in rows {
            table.row(vec![
                bundle.ds.name.clone(),
                name.into(),
                format!("{:.2}", 100.0 * metrics.precision),
                format!("{:.2}", 100.0 * metrics.recall),
                format!("{:.2}", 100.0 * metrics.f1),
                format!("{:.2}", 100.0 * metrics.jaccard),
                format!("{:.2}", per_1000(secs, bundle.test.len())),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": name,
                "precision": metrics.precision,
                "recall": metrics.recall,
                "f1": metrics.f1,
                "jaccard": metrics.jaccard,
                "sec_per_1000": per_1000(secs, bundle.test.len()),
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Table V): MMA best everywhere; Nearest weakest.");
    write_json("table5_matching", &trmma_bench::Value::Array(json));
}
