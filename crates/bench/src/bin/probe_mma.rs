//! Diagnostic: MMA point-accuracy convergence and candidate coverage.
//! Not part of the paper's tables; used to tune training defaults.

use trmma_bench::harness::{Bundle, ExpConfig};
use trmma_core::Mma;
use trmma_traj::api::CandidateFinder;

fn main() {
    let cfg = ExpConfig::from_env();
    let dcfg = &cfg.dataset_configs()[0];
    let bundle = Bundle::prepare(dcfg, 0.1, cfg.mma_config().d0);

    // Candidate coverage at kc=10 (upper bound for MMA's point accuracy).
    let finder = CandidateFinder::new(&bundle.net, 10);
    let mut cover = 0usize;
    let mut nearest_hit = 0usize;
    let mut total = 0usize;
    for s in &bundle.test {
        for (p, t) in s.sparse.points.iter().zip(&s.sparse_truth) {
            let cands = finder.candidates(p.pos);
            total += 1;
            cover += usize::from(cands.iter().any(|c| c.seg == t.seg));
            nearest_hit += usize::from(cands[0].seg == t.seg);
        }
    }
    println!(
        "coverage@10 = {:.3}, nearest-hit = {:.3} ({} points)",
        cover as f64 / total as f64,
        nearest_hit as f64 / total as f64,
        total
    );

    let mut mma = Mma::new(
        bundle.net.clone(),
        bundle.planner.clone(),
        Some(bundle.node2vec.clone()),
        trmma_core::MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() },
    );
    let acc = |m: &Mma| -> f64 {
        let mut hit = 0usize;
        let mut twin_err = 0usize;
        let mut tot = 0usize;
        for s in &bundle.test {
            for (mp, t) in m.match_points(&s.sparse).iter().zip(&s.sparse_truth) {
                if mp.seg == t.seg {
                    hit += 1;
                } else if bundle.net.reverse_twin(mp.seg) == Some(t.seg) {
                    twin_err += 1;
                }
                tot += 1;
            }
        }
        let errs = tot - hit;
        let twin_pct = (100 * twin_err).checked_div(errs).unwrap_or(0);
        eprintln!("   errors: {errs} total, {twin_err} reverse-twin ({twin_pct}%)");
        hit as f64 / tot.max(1) as f64
    };
    println!("epoch 0: point-acc {:.3}", acc(&mma));
    for round in 1..=(cfg.epochs / 2).max(1) {
        let rep = mma.train(&bundle.train, 2);
        println!(
            "epoch {}: point-acc {:.3} (loss {:.4}, {:.1}s/epoch)",
            round * 2,
            acc(&mma),
            rep.final_loss(),
            rep.mean_epoch_time_s()
        );
    }
}
