//! Fig. 10: map-matching training time per epoch.
//!
//! MMA is the learned matcher here; the table also reports the one-off
//! costs of the non-learned pipeline pieces for context (FMM's UBODT
//! build, Node2Vec pre-training) — the paper's figure compares learned
//! matchers, whose surrogate in this repo is MMA itself vs the heavier
//! full-network baseline trained for recovery (Fig. 6).

use trmma_baselines::{FmmMatcher, HmmConfig};
use trmma_bench::harness::{timed, trained_mma, Bundle, ExpConfig};
use trmma_bench::report::{write_json, Table};
use trmma_node2vec::{train_embeddings, Node2VecConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    println!("== Fig. 10: matching training time per epoch (s) ==\n");
    let mut table = Table::new(&["Dataset", "Cost", "seconds"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let (_, report) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let n2v_cfg = Node2VecConfig { dim: cfg.mma_config().d0, ..Node2VecConfig::default() };
        let (_, n2v_s) = timed(|| train_embeddings(&bundle.net, &n2v_cfg));

        for (what, secs) in [
            ("MMA s/epoch", report.mean_epoch_time_s()),
            ("FMM UBODT build (one-off)", fmm.precompute_s),
            ("Node2Vec pretrain (one-off)", n2v_s),
        ] {
            table.row(vec![bundle.ds.name.clone(), what.into(), format!("{secs:.2}")]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "cost": what,
                "seconds": secs,
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Fig. 10): MMA's per-epoch cost is small; one-off precomputations amortise.");
    write_json("fig10_matching_training", &trmma_bench::Value::Array(json));
}
