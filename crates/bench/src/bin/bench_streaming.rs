//! Streaming-inference benchmark (`BENCH_streaming.json`).
//!
//! Replays a synthetic corpus as one interleaved point stream — every
//! session's points in order, sessions arbitrarily mixed, the shape live
//! traffic has — through `trmma_core::StreamEngine`, for MMA and all
//! HMM-family baselines (HMM, FMM, LHMM), sweeping engine thread counts.
//! Reports per-point decode latency quantiles, points/s, sessions/s, the
//! mean stabilization lag of the watermark, and the transition-oracle
//! cache counters; every session's finalized result is validated against
//! the offline `match_trajectory` before any row is emitted.
//!
//! A second sweep replays the same corpus under **skewed** session ids
//! (all colliding modulo the worker count) for both router policies —
//! the legacy `id % threads` and the load-aware power-of-two-choices
//! router — and reports the per-worker queue-depth variance of each, so
//! the imbalance and its fix are visible in the committed artifact even
//! on a single-core host (queue depth is a routing property, not a
//! parallel-speedup property).
//!
//! A third sweep — always in full runs, opt-in via `--chaos` under
//! `--smoke` — replays the uniform stream with **seeded faults injected**
//! (worker panics, queue stalls, reply delays) and records the supervisor's
//! recovery telemetry: restarts, sessions recovered, journal points
//! replayed, mean recovery latency per crash. The binary asserts the
//! crash-safety contract on every chaos row: zero sessions lost and
//! finals bitwise-identical to the offline decode.
//!
//! A fourth sweep — always in full runs, opt-in via `--remote` under
//! `--smoke` — replays the uniform corpus through a **loopback TCP
//! socket**: a `trmma_core::serve::Server` fronting the engine, with the
//! client pushing under a bounded inflight window. The `"remote"` rows
//! record ack round-trip latency quantiles (wire codec + admission +
//! decode + reply), and `--assert-tail-ratio R` gates ack p99/p50 on
//! every remote row (best-of-2 against host timer jitter). Finals must
//! stay bitwise-identical to the offline decode.
//!
//! Pass `--artifact PATH` to start from a `trmma-artifacts build` image:
//! network and embeddings served from the image, MMA weights loaded
//! instead of trained, FMM adopting the image's distance table zero-copy.
//! Both cold-start paths to a query-ready table are always measured and
//! recorded under `"cold_start"` in the JSON document.
//!
//! Scale knobs: `TRMMA_SCALE` / `TRMMA_EPOCHS` / `TRMMA_PROFILE`, plus
//! `TRMMA_STREAM_SESSIONS` (target concurrent sessions, default 64). Pass
//! `--smoke` for the CI profile: tiny dataset, threads {1, 2}, artifact
//! copy only (the committed repo-root file is left untouched).
//!
//! Pass `--shards N` to replay the uniform sweep a second time with every
//! matcher decoding through a grid-cut `trmma_roadnet::ShardedNetwork`
//! (per-shard R-trees and intra tables stitched by a boundary overlay);
//! the extra rows carry `"variant": "sharded"` and resident-bytes
//! accounting next to the monolithic rows'.

use std::sync::Arc;

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, LhmmMatcher};
use trmma_bench::artifacts::{
    attach_cold_start, bench_cold_start, build_image, build_sharded, prepare_from_artifact,
};
use trmma_bench::harness::{trained_mma, Bundle, ExpConfig};
use trmma_bench::remote_bench::{attach_remote, bench_remote, RemoteRow};
use trmma_bench::report::{write_bench_streaming, write_json, Table};
use trmma_bench::stream_bench::{
    bench_chaos, bench_streaming, bench_streaming_routed, interleave, interleave_ids,
    skewed_session_ids, stream_rows_to_json, tag_stream_variant, uniform_session_ids, ChaosRow,
    StreamRow,
};
use trmma_core::{Artifact, FaultPlan, Mma, MmaConfig, RouterPolicy};
use trmma_roadnet::transition::DIST_RECORD_BYTES;
use trmma_roadnet::{monolithic_resident_bytes, ShardedNetwork};
use trmma_traj::dataset::DatasetConfig;
use trmma_traj::types::Trajectory;

/// The decoded image and its raw bytes (kept for the cold-start replay),
/// when `--artifact PATH` was given.
fn load_artifact() -> Option<(Artifact, Vec<u8>)> {
    let args: Vec<String> = std::env::args().collect();
    let path = args.iter().position(|a| a == "--artifact").and_then(|i| args.get(i + 1))?;
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("cannot read artifact {path}: {e}"));
    let art =
        Artifact::decode(bytes.clone()).unwrap_or_else(|e| panic!("invalid artifact {path}: {e}"));
    Some((art, bytes))
}

/// The `--shards N` tile count, when given.
fn shards_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--shards")?;
    let v = args.get(i + 1).expect("--shards needs a value");
    let n: usize = v.parse().unwrap_or_else(|e| panic!("--shards {v}: {e}"));
    assert!(n > 0, "--shards must be at least 1");
    Some(n)
}

/// The `--assert-tail-ratio R` bound on remote-row ack p99/p50, when given.
fn tail_bound() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--assert-tail-ratio")?;
    let v = args.get(i + 1).expect("--assert-tail-ratio needs a value");
    Some(v.parse().unwrap_or_else(|e| panic!("--assert-tail-ratio {v}: {e}")))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chaos = std::env::args().any(|a| a == "--chaos") || !smoke;
    let remote = std::env::args().any(|a| a == "--remote") || !smoke;
    let artifact = load_artifact();
    let shards_n = shards_arg();
    let cfg = ExpConfig::from_env();
    println!("== Streaming inference: interleaved live sessions ==\n");

    let dcfg = if smoke {
        DatasetConfig::tiny()
    } else {
        cfg.dataset_configs().into_iter().next().expect("at least one dataset selected")
    };
    let bundle = match &artifact {
        Some((art, _)) => prepare_from_artifact(&dcfg, 0.1, art)
            .expect("artifact was built for a different dataset (TRMMA_* knobs must match)"),
        None => Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0),
    };
    let epochs = if smoke { 1 } else { cfg.epochs.min(3) };
    let mma = match &artifact {
        Some((art, _)) => {
            let mcfg = MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() };
            let mut mma = Mma::new(
                bundle.net.clone(),
                bundle.planner.clone(),
                Some(bundle.node2vec.clone()),
                mcfg,
            );
            mma.load_weights(art.params_blob("mma").expect("artifact stores mma weights"))
                .expect("mma weights fit the current profile");
            mma
        }
        None => trained_mma(&bundle, cfg.mma_config(), epochs).0,
    };

    let hmm_cfg = HmmConfig::default();
    let image = match &artifact {
        Some((_, bytes)) => bytes.clone(),
        None => build_image(&bundle, &[("mma", mma.save_weights())], hmm_cfg.max_route_m, None),
    };
    let cold = bench_cold_start(&bundle.net, hmm_cfg.max_route_m, image);
    for r in &cold {
        assert!(r.identical, "cold-start path {} diverged from the built table", r.source);
    }

    let mma = Arc::new(mma);
    let hmm =
        Arc::new(HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg.clone()));
    let fmm = Arc::new(match &artifact {
        Some((art, _)) => FmmMatcher::with_table(
            bundle.net.clone(),
            bundle.planner.clone(),
            hmm_cfg.clone(),
            Arc::new(art.dist_table().expect("artifact stores a dist table")),
        ),
        None => FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), hmm_cfg.clone()),
    });
    let lhmm = Arc::new(LhmmMatcher::fit(
        bundle.net.clone(),
        bundle.planner.clone(),
        hmm_cfg.clone(),
        &bundle.train,
    ));

    // The session corpus: test sparse trajectories, tiled up to the target
    // concurrent-session count, then shuffled into one point stream.
    let target: usize = if smoke {
        16
    } else {
        std::env::var("TRMMA_STREAM_SESSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    };
    let mut sessions: Vec<Trajectory> =
        bundle.test.iter().map(|s| s.sparse.clone()).filter(|t| !t.is_empty()).collect();
    assert!(!sessions.is_empty(), "dataset {} produced no test trajectories", bundle.ds.name);
    while sessions.len() < target {
        let again: Vec<_> = sessions.iter().take(target - sessions.len()).cloned().collect();
        sessions.extend(again);
    }
    let events = interleave(&sessions, 0x5EED);
    let threads = if smoke {
        vec![1, 2]
    } else {
        let mut t = trmma_bench::batch_bench::default_thread_counts();
        if t == [1] {
            t.push(2);
        }
        t
    };
    println!(
        "dataset {} | {} sessions | {} streamed points | threads {threads:?}\n",
        bundle.ds.name,
        sessions.len(),
        events.len()
    );

    let mono_resident =
        monolithic_resident_bytes(&bundle.net, None) + fmm.table_len() * DIST_RECORD_BYTES;
    let mut uniform: Vec<StreamRow> = Vec::new();
    uniform.extend(bench_streaming(&mma, &sessions, &events, &threads, None));
    uniform.extend(bench_streaming(&hmm, &sessions, &events, &threads, Some(hmm.provider())));
    uniform.extend(bench_streaming(&fmm, &sessions, &events, &threads, Some(fmm.provider())));
    uniform.extend(bench_streaming(&lhmm, &sessions, &events, &threads, Some(lhmm.provider())));
    let mut rows = tag_stream_variant(uniform, "monolithic", mono_resident);

    // Sharded sweep: the same uniform replay with every matcher decoding
    // through the grid-cut sharded network.
    if let Some(n) = shards_n {
        let sharded: Arc<ShardedNetwork> =
            Arc::new(build_sharded(&bundle.net, n, hmm_cfg.max_route_m));
        let total_resident = sharded.resident_bytes();
        println!(
            "sharded: {n} tiles | resident {:.2} MB vs {:.2} MB monolithic\n",
            total_resident as f64 / 1e6,
            mono_resident as f64 / 1e6
        );
        let mcfg = MmaConfig { d0: bundle.node2vec.cols(), ..cfg.mma_config() };
        let mut mma_sh = Mma::sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            Some(bundle.node2vec.clone()),
            mcfg,
        );
        mma_sh
            .load_weights(&mma.save_weights())
            .expect("the monolithic model's weights fit the sharded instance");
        let mma_sh = Arc::new(mma_sh);
        let hmm_sh = Arc::new(HmmMatcher::sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            hmm_cfg.clone(),
        ));
        let fmm_sh = Arc::new(FmmMatcher::sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            hmm_cfg.clone(),
        ));
        let lhmm_sh = Arc::new(LhmmMatcher::fit_sharded(
            Arc::clone(&sharded),
            bundle.planner.clone(),
            hmm_cfg.clone(),
            &bundle.train,
        ));
        let mut srows: Vec<StreamRow> = Vec::new();
        srows.extend(bench_streaming(&mma_sh, &sessions, &events, &threads, None));
        srows.extend(bench_streaming(
            &hmm_sh,
            &sessions,
            &events,
            &threads,
            Some(hmm_sh.provider()),
        ));
        srows.extend(bench_streaming(
            &fmm_sh,
            &sessions,
            &events,
            &threads,
            Some(fmm_sh.provider()),
        ));
        srows.extend(bench_streaming(
            &lhmm_sh,
            &sessions,
            &events,
            &threads,
            Some(lhmm_sh.provider()),
        ));
        rows.extend(tag_stream_variant(srows, "sharded", total_resident));
    }

    // Skewed-arrival sweep: every id collides modulo the worker count, the
    // adversary of the legacy hash router. Same corpus, same interleaving
    // order, both policies, widest thread count measured above.
    let skew_threads = *threads.last().expect("non-empty thread list");
    let skew_ids = skewed_session_ids(sessions.len(), skew_threads);
    let skew_events = interleave_ids(&sessions, &skew_ids, 0x5EED);
    for policy in [RouterPolicy::HashMod, RouterPolicy::PowerOfTwo] {
        rows.extend(tag_stream_variant(
            bench_streaming_routed(
                &hmm,
                &sessions,
                &skew_ids,
                &skew_events,
                &[skew_threads],
                policy,
                "skewed",
                Some(hmm.provider()),
            ),
            "monolithic",
            mono_resident,
        ));
    }

    let mut table = Table::new(&[
        "Method",
        "Threads",
        "Router",
        "Workload",
        "Variant",
        "pts/s",
        "sess/s",
        "p50(ms)",
        "p99(ms)",
        "p999(ms)",
        "StableLag",
        "QDepthVar",
        "Migr",
        "Identical",
        "Cache h/m",
    ]);
    for r in &rows {
        table.row(vec![
            r.method.clone(),
            r.threads.to_string(),
            r.router.clone(),
            r.workload.clone(),
            r.variant.clone(),
            format!("{:.1}", r.points_per_s),
            format!("{:.2}", r.sessions_per_s),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.3}", r.p999_ms),
            format!("{:.2}", r.mean_stable_lag),
            format!("{:.1}", r.queue_depth_variance),
            r.migrations.to_string(),
            r.identical.to_string(),
            r.cache.map_or_else(|| "-".to_string(), |c| format!("{}/{}", c.hits, c.misses)),
        ]);
    }
    table.print();

    let diverged: Vec<&StreamRow> = rows.iter().filter(|r| !r.identical).collect();
    assert!(diverged.is_empty(), "streamed output diverged from offline decode: {diverged:?}");

    // The load-aware router must not balance *worse* than id % threads on
    // its adversary workload (the strict inequality is pinned by the
    // `Slow`-decoder unit test in `stream_bench`, where queues are forced
    // to build; a live replay on a fast host can legitimately tie at 0).
    let skew_var = |router: &str| -> f64 {
        rows.iter()
            .find(|r| r.workload == "skewed" && r.router == router)
            .map_or(0.0, |r| r.queue_depth_variance)
    };
    let (v_hash, v_p2c) = (skew_var("hash_mod"), skew_var("power_of_two"));
    println!(
        "\nskewed-arrival queue-depth variance: hash_mod {v_hash:.1} vs power_of_two {v_p2c:.1}"
    );
    assert!(
        v_p2c <= v_hash || v_hash == 0.0,
        "load-aware router balanced worse than id % threads: {v_p2c} > {v_hash}"
    );

    // Chaos sweep: the same uniform replay with seeded worker panics,
    // queue stalls and reply delays injected. The artifact pins the
    // crash-safety contract — zero lost sessions, bitwise-identical
    // finals — alongside what recovery costs (supervisor latency per
    // crash, journal points replayed).
    let mut chaos_rows: Vec<ChaosRow> = Vec::new();
    if chaos {
        let chaos_threads = *threads.last().expect("non-empty thread list");
        for (seed, per_mille, max_panics) in [(0xC4A05, 150, 4), (0xBAD5EED, 300, 8)] {
            let plan = FaultPlan::panics(seed, per_mille, max_panics);
            chaos_rows.push(bench_chaos(&hmm, &sessions, &events, chaos_threads, plan));
            chaos_rows.push(bench_chaos(&mma, &sessions, &events, chaos_threads, plan));
        }
        let mut ctable = Table::new(&[
            "Method",
            "Threads",
            "Seed",
            "Restarts",
            "Recovered",
            "Replayed",
            "Lost",
            "Recovery(ms)",
            "Identical",
        ]);
        for r in &chaos_rows {
            ctable.row(vec![
                r.method.clone(),
                r.threads.to_string(),
                format!("{:#x}", r.fault_seed),
                r.worker_restarts.to_string(),
                r.sessions_recovered.to_string(),
                r.points_replayed.to_string(),
                r.sessions_lost.to_string(),
                format!("{:.3}", r.mean_recovery_ms),
                r.identical.to_string(),
            ]);
        }
        println!("\n== Chaos sweep: seeded worker panics mid-stream ==\n");
        ctable.print();
        for r in &chaos_rows {
            assert_eq!(r.sessions_lost, 0, "chaos run lost sessions: {r:?}");
            assert!(r.identical, "chaos run diverged from the offline decode: {r:?}");
        }
    }

    // Remote sweep: the same uniform corpus replayed through a loopback
    // TCP socket — `trmma_core::serve::Server` in front of the engine —
    // measuring ack round-trip latency end to end (wire codec + admission
    // + decode + reply). Finals must stay bitwise-identical to offline;
    // `--assert-tail-ratio R` additionally gates ack p99/p50 per row.
    let mut remote_rows: Vec<RemoteRow> = Vec::new();
    if remote {
        let window = 16;
        let ids = uniform_session_ids(sessions.len());
        let tail = tail_bound();
        let run_remote = |m: &dyn Fn() -> RemoteRow| -> RemoteRow {
            // The tail gate binds on a single loopback scheduling hiccup;
            // best-of-2 keeps the CI signal about the protocol, not the
            // host's timer jitter (same policy as the inference smoke).
            let first = m();
            if tail.is_none() {
                return first;
            }
            let second = m();
            let ratio = |r: &RemoteRow| if r.p50_ms > 0.0 { r.p99_ms / r.p50_ms } else { 0.0 };
            if ratio(&second) < ratio(&first) {
                second
            } else {
                first
            }
        };
        remote_rows.push(run_remote(&|| bench_remote(&mma, &sessions, &ids, &events, window)));
        remote_rows.push(run_remote(&|| bench_remote(&hmm, &sessions, &ids, &events, window)));
        remote_rows.push(run_remote(&|| bench_remote(&fmm, &sessions, &ids, &events, window)));
        remote_rows.push(run_remote(&|| bench_remote(&lhmm, &sessions, &ids, &events, window)));
        let mut rtable = Table::new(&[
            "Method",
            "Sessions",
            "Window",
            "acked/s",
            "ack p50(ms)",
            "ack p99(ms)",
            "ack p999(ms)",
            "Busy",
            "Identical",
        ]);
        for r in &remote_rows {
            rtable.row(vec![
                r.method.clone(),
                r.sessions.to_string(),
                r.window.to_string(),
                format!("{:.1}", r.points_per_s),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:.3}", r.p999_ms),
                r.busy.to_string(),
                r.identical.to_string(),
            ]);
        }
        println!("\n== Remote ingest: loopback TCP through trmma-serve ==\n");
        rtable.print();
        for r in &remote_rows {
            assert!(r.identical, "socket replay diverged from the offline decode: {r:?}");
            assert_eq!(
                r.points as usize,
                events.len(),
                "every streamed point must be acked: {r:?}"
            );
        }
        if let Some(bound) = tail {
            for r in &remote_rows {
                if r.p50_ms > 0.0 {
                    let ratio = r.p99_ms / r.p50_ms;
                    assert!(
                        ratio <= bound,
                        "remote ack tail ratio p99/p50 = {ratio:.2} exceeds {bound} for {}",
                        r.method
                    );
                }
            }
            println!("\nremote ack tail ratio gate: p99/p50 <= {bound} held for all rows");
        }
    }

    let mut ctable = Table::new(&["ColdStart", "ms", "Speedup", "Identical", "Records"]);
    for r in &cold {
        ctable.row(vec![
            r.source.clone(),
            format!("{:.3}", r.cold_start_ms),
            format!("{:.1}x", r.speedup),
            r.identical.to_string(),
            r.table_records.to_string(),
        ]);
    }
    println!("\n== Cold start: in-process build vs artifact load ==\n");
    ctable.print();

    let mut doc = stream_rows_to_json(&rows, &chaos_rows, events.len(), &bundle.ds.name);
    attach_cold_start(&mut doc, &cold);
    if remote {
        attach_remote(&mut doc, &remote_rows);
    }
    if smoke {
        println!("\n--smoke: repo-root BENCH_streaming.json left untouched");
    } else {
        write_bench_streaming(&doc);
    }
    write_json("bench_streaming", &doc);
}
