//! Fig. 9: map-matching inference time per 1000 trajectories (seconds).
//!
//! Expected shape: MMA fastest among learned/probabilistic matchers — one
//! R-tree query plus a kc-way scoring per point, no per-transition
//! shortest-path search; FMM beats HMM thanks to the UBODT.
//!
//! The baseline rows (Nearest/HMM/FMM) run through the pooled batch engine
//! (`par_match_pooled`: scoped worker threads, one warm `SsspPool` per
//! worker, shared `DistCache`/UBODT) — the timing is the parallel
//! wall-clock, the output is identical to the sequential per-call API. The
//! plain `MMA` row stays on the sequential per-call API so the adjacent
//! `MMA (batch)` row still shows the engine's win over it.

use std::sync::Arc;

use trmma_baselines::{FmmMatcher, HmmConfig, HmmMatcher, NearestMatcher};
use trmma_bench::harness::{
    eval_matching, eval_matching_batch, eval_matching_pooled, per_1000, trained_mma, Bundle,
    ExpConfig,
};
use trmma_bench::report::{write_json, Table};
use trmma_core::{BatchMatcher, BatchOptions};
use trmma_traj::MapMatcher;

fn main() {
    let cfg = ExpConfig::from_env();
    let opts = BatchOptions::default();
    println!("== Fig. 9: matching inference time (s / 1000 trajectories) ==\n");
    println!("(Nearest/HMM/FMM rows: pooled batch engine, all cores)\n");
    let mut table = Table::new(&["Dataset", "Method", "s/1k", "F1", "precompute(s)"]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let nearest = NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let hmm = HmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let fmm_precompute = fmm.precompute_s;
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs.min(3));

        let mut emit = |name: &str, metrics: trmma_traj::MatchingMetrics, secs: f64, pre: f64| {
            let s1k = per_1000(secs, bundle.test.len());
            table.row(vec![
                bundle.ds.name.clone(),
                name.into(),
                format!("{s1k:.3}"),
                format!("{:.2}", 100.0 * metrics.f1),
                format!("{pre:.2}"),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": name,
                "sec_per_1000": s1k,
                "f1": metrics.f1,
                "precompute_s": pre,
            }));
        };
        let (m, s) = eval_matching_pooled(&nearest, &bundle.test, opts);
        emit(nearest.name(), m, s, 0.0);
        let (m, s) = eval_matching_pooled(&hmm, &bundle.test, opts);
        emit(hmm.name(), m, s, 0.0);
        let (m, s) = eval_matching_pooled(&fmm, &bundle.test, opts);
        emit(fmm.name(), m, s, fmm_precompute);
        let (m, s) = eval_matching(&mma, &bundle.test);
        emit(mma.name(), m, s, 0.0);

        // The batched engine over the same trained matcher: identical
        // output, all cores, per-worker scratch reuse.
        let engine = BatchMatcher::new(Arc::new(mma), BatchOptions::default());
        let (metrics, secs) = eval_matching_batch(&engine, &bundle.test);
        let s1k = per_1000(secs, bundle.test.len());
        table.row(vec![
            bundle.ds.name.clone(),
            "MMA (batch)".into(),
            format!("{s1k:.3}"),
            format!("{:.2}", 100.0 * metrics.f1),
            "0.00".into(),
        ]);
        json.push(trmma_bench::json!({
            "dataset": bundle.ds.name,
            "method": "MMA (batch)",
            "sec_per_1000": s1k,
            "f1": metrics.f1,
            "precompute_s": 0.0,
        }));
    }
    table.print();
    println!("\nExpected shape (paper Fig. 9): MMA fastest at the best F1; FMM trades precompute for faster inference than HMM; the batch engine divides MMA's time by roughly the core count.");
    write_json("fig9_matching_inference", &trmma_bench::Value::Array(json));
}
