//! Diagnostic: TRMMA decoder quality isolated from matcher errors.
//! Compares, on ground-truth matched inputs: TRMMA's learned decoding vs
//! pure linear interpolation along the true route.

use trmma_bench::harness::{Bundle, ExpConfig};
use trmma_core::{Trmma, TrmmaConfig};
use trmma_roadnet::shortest::DistCache;
use trmma_traj::metrics::recovery_metrics;
use trmma_traj::types::{MatchedPoint, MatchedTrajectory};

/// Linear interpolation along the *true* route between true matched points
/// (the upper bound of any interpolate-style method).
fn linear_on_truth(bundle: &Bundle, s: &trmma_traj::Sample, epsilon: f64) -> MatchedTrajectory {
    let net = &bundle.net;
    let route = &s.route;
    let mut prefix = Vec::with_capacity(route.len());
    let mut acc = 0.0;
    for &e in &route.segs {
        prefix.push(acc);
        acc += net.segment(e).length;
    }
    let offset = |seg, ratio: f64, from: usize| -> (usize, f64) {
        let idx = route.segs[from..].iter().position(|&e| e == seg).unwrap_or(0) + from;
        (idx, prefix[idx] + ratio * net.segment(route.segs[idx]).length)
    };
    let locate = |off: f64| -> (usize, f64) {
        let idx = prefix.partition_point(|&p| p <= off).saturating_sub(1);
        let len = net.segment(route.segs[idx]).length.max(1e-9);
        (idx, ((off - prefix[idx]) / len).min(1.0))
    };
    let mut out = vec![s.sparse_truth[0]];
    let (mut cur, mut prev_off) = offset(s.sparse_truth[0].seg, s.sparse_truth[0].ratio, 0);
    for w in s.sparse_truth.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let (b_idx, b_off) = offset(b.seg, b.ratio, cur);
        let missing = ((b.t - a.t) / epsilon).round() as usize - 1;
        for j in 1..=missing {
            let f = j as f64 / (missing + 1) as f64;
            let (idx, ratio) = locate(prev_off + f * (b_off - prev_off));
            out.push(MatchedPoint::new(route.segs[idx], ratio, a.t + j as f64 * epsilon));
        }
        out.push(*b);
        cur = b_idx;
        prev_off = b_off;
    }
    MatchedTrajectory::new(out)
}

fn main() {
    let cfg = ExpConfig::from_env();
    let dcfg = &cfg.dataset_configs()[0];
    let bundle = Bundle::prepare(dcfg, 0.1, cfg.mma_config().d0);
    let eps = bundle.ds.epsilon_s;
    let cache = DistCache::new();

    let eval = |name: &str, rec_fn: &dyn Fn(&trmma_traj::Sample) -> MatchedTrajectory| {
        let mut acc = 0.0;
        let mut mae = 0.0;
        for s in &bundle.test {
            let rec = rec_fn(s);
            let m = recovery_metrics(&bundle.net, &rec, &s.dense_truth, Some(&cache));
            acc += m.accuracy;
            mae += m.mae;
        }
        let n = bundle.test.len() as f64;
        println!("{name}: acc {:.3}, mae {:.1}", acc / n, mae / n);
    };

    eval("linear-on-truth", &|s| linear_on_truth(&bundle, s, eps));

    let mut model = Trmma::new(bundle.net.clone(), cfg.trmma_config());
    eval("trmma epoch 0  ", &|s| {
        model.recover_from_match(&s.sparse, &s.sparse_truth, &s.route, eps)
    });
    for round in 1..=(cfg.epochs / 2).max(1) {
        let rep = model.train(&bundle.train, 2);
        print!(
            "after {:2} epochs (loss {:.4}, {:.1}s/ep) -> ",
            round * 2,
            rep.final_loss(),
            rep.mean_epoch_time_s()
        );
        eval("trmma", &|s| model.recover_from_match(&s.sparse, &s.sparse_truth, &s.route, eps));
    }

    let _ = TrmmaConfig::default();
}
