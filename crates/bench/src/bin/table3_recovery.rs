//! Table III: trajectory-recovery quality (Recall, Precision, F1, Accuracy
//! in %, MAE/RMSE in metres) at the default sparsity γ = 0.1.
//!
//! Methods (surrogate mapping per DESIGN.md §1):
//! * `Nearest+Lin` — nearest-segment matching + linear interpolation;
//! * `Linear`      — FMM matching + linear interpolation (the paper's
//!   `Linear` row);
//! * `Seq2SeqFull` — MTrajRec-style full-network seq2seq (the paper's
//!   learned-competitor family);
//! * `TRMMA`       — MMA matching + route-restricted recovery (ours).
//!
//! Expected shape: TRMMA best on every metric; Seq2SeqFull between the
//! interpolation baselines and TRMMA on segment metrics.

use trmma_baselines::{FmmMatcher, HmmConfig, LinearRecovery, NearestMatcher};
use trmma_bench::harness::{
    eval_recovery, per_1000, trained_mma, trained_seq2seq, trained_trmma, Bundle, ExpConfig,
};
use trmma_bench::report::{write_json, Table};
use trmma_core::TrmmaPipeline;
use trmma_traj::TrajectoryRecovery;

fn main() {
    let cfg = ExpConfig::from_env();
    println!(
        "== Table III: recovery quality (gamma=0.1, scale {:.2}, {} epochs) ==\n",
        cfg.scale, cfg.epochs
    );
    let mut table = Table::new(&[
        "Dataset",
        "Method",
        "Recall",
        "Precision",
        "F1",
        "Accuracy",
        "MAE(m)",
        "RMSE(m)",
        "s/1k",
    ]);
    let mut json = Vec::new();
    for dcfg in cfg.dataset_configs() {
        let bundle = Bundle::prepare(&dcfg, 0.1, cfg.mma_config().d0);
        let eps = bundle.ds.epsilon_s;

        let nearest = NearestMatcher::new(bundle.net.clone(), bundle.planner.clone());
        let near_lin = LinearRecovery::new(bundle.net.clone(), nearest, "Nearest+Lin");
        let fmm = FmmMatcher::new(bundle.net.clone(), bundle.planner.clone(), HmmConfig::default());
        let fmm_lin = LinearRecovery::new(bundle.net.clone(), fmm, "Linear");
        // The |E|-softmax baseline converges (to its plateau) in a few
        // epochs and trains an order of magnitude slower than TRMMA; cap it
        // so the table regenerates in minutes.
        let (seq2seq, _) = trained_seq2seq(&bundle, cfg.seq2seq_config(), cfg.epochs.min(8));
        let (mma, _) = trained_mma(&bundle, cfg.mma_config(), cfg.epochs);
        let (trmma, _) = trained_trmma(&bundle, cfg.trmma_config(), cfg.epochs);
        let pipeline = TrmmaPipeline::new(Box::new(mma), trmma, "TRMMA");

        let methods: Vec<&dyn TrajectoryRecovery> = vec![&near_lin, &fmm_lin, &seq2seq, &pipeline];
        for m in methods {
            let (metrics, secs) = eval_recovery(&bundle.net, m, &bundle.test, eps);
            table.row(vec![
                bundle.ds.name.clone(),
                m.name().into(),
                format!("{:.2}", 100.0 * metrics.recall),
                format!("{:.2}", 100.0 * metrics.precision),
                format!("{:.2}", 100.0 * metrics.f1),
                format!("{:.2}", 100.0 * metrics.accuracy),
                format!("{:.1}", metrics.mae),
                format!("{:.1}", metrics.rmse),
                format!("{:.2}", per_1000(secs, bundle.test.len())),
            ]);
            json.push(trmma_bench::json!({
                "dataset": bundle.ds.name,
                "method": m.name(),
                "recall": metrics.recall,
                "precision": metrics.precision,
                "f1": metrics.f1,
                "accuracy": metrics.accuracy,
                "mae_m": metrics.mae,
                "rmse_m": metrics.rmse,
                "sec_per_1000": per_1000(secs, bundle.test.len()),
            }));
        }
    }
    table.print();
    println!("\nExpected shape (paper Table III): TRMMA best on all metrics per dataset.");
    write_json("table3_recovery", &trmma_bench::Value::Array(json));
}
