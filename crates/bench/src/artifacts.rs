//! Artifact-backed preparation and the cold-start benchmark rows.
//!
//! [`build_image`] packs everything a serving process needs — the road
//! graph, the FMM distance table, trained weight blobs, node2vec
//! embeddings — into one `trmma_core::artifact` image, and
//! [`prepare_from_artifact`] is the startup path that *consumes* it: a
//! [`Bundle`] whose network and embeddings come straight from the image
//! instead of being re-derived (no node2vec training, no Dijkstra
//! sweeps). [`bench_cold_start`] measures exactly that trade: wall-clock
//! of `DistTable::build` versus validating the image and serving the
//! table zero-copy from it, with a bitwise-identity check over every
//! stored pair. The rows land under `"cold_start"` in both committed
//! benchmark documents (`BENCH_inference.json`, `BENCH_streaming.json`).

use std::sync::Arc;
use std::time::Instant;

use trmma_core::{Artifact, ArtifactBuilder, ArtifactError};
use trmma_roadnet::{
    DistTable, GridCut, NodeId, RoadNetwork, RoutePlanner, ShardPlan, ShardedNetwork,
};
use trmma_traj::dataset::{build_dataset, DatasetConfig, Split};

use crate::harness::Bundle;
use crate::json::Value;

/// The grid-cut seed every harness entry point uses when sharding a
/// network, so `trmma-artifacts build --shards N` and a benchmark binary's
/// in-process `--shards N` produce the same [`ShardPlan`] (and therefore
/// interchangeable shard payloads).
pub const SHARD_CUT_SEED: u64 = 17;

/// Partitions `net` into `n` grid tiles with the harness-wide cut seed and
/// builds the sharded network at `delta` (the route-distance bound the
/// HMM-family transitions run under).
#[must_use]
pub fn build_sharded(net: &Arc<RoadNetwork>, n: usize, delta: f64) -> ShardedNetwork {
    let plan = ShardPlan::new(net, &GridCut::square(n, SHARD_CUT_SEED));
    ShardedNetwork::build(Arc::clone(net), plan, delta)
}

/// Packs a prepared bundle into an artifact image: graph, distance table
/// (built at `delta`, FMM's UBODT bound), the given named weight blobs
/// (`Mma::save_weights` / `Trmma::save_weights` output) and the bundle's
/// node2vec embeddings. With `shards: Some(n)` the image also carries a
/// `shards` section — the grid-cut plan, every per-shard intra table and
/// the boundary overlay — so a serving process can stand up a
/// [`ShardedNetwork`] zero-copy via `Artifact::sharded_network`.
#[must_use]
pub fn build_image(
    bundle: &Bundle,
    weights: &[(&str, Vec<u8>)],
    delta: f64,
    shards: Option<usize>,
) -> Vec<u8> {
    let table = DistTable::build(&bundle.net, delta);
    let mut b = ArtifactBuilder::new();
    b.graph(&bundle.net);
    b.dist_table(&table);
    for (name, blob) in weights {
        b.params(name, blob);
    }
    b.embeddings(&bundle.node2vec);
    if let Some(n) = shards {
        b.shards(&build_sharded(&bundle.net, n, delta));
    }
    b.finish()
}

/// Rebuilds a [`Bundle`] with the expensive pieces served from a loaded
/// artifact: the network is materialized from the image's graph section
/// and the node2vec embeddings are read instead of retrained. The
/// trajectory corpus is still generated from `cfg` (trajectories are
/// workload, not model state) and the route planner is re-fitted on the
/// training routes — both cheap next to node2vec training.
///
/// The artifact graph must be **bit-identical** to the dataset's: the
/// samples reference segment ids, and the distance table and embedding
/// rows in the image are keyed by them.
///
/// # Errors
/// Any decode error of the graph/embeddings sections, or
/// [`ArtifactError::Malformed`] when the artifact was built for a
/// different network than `cfg` generates.
pub fn prepare_from_artifact(
    cfg: &DatasetConfig,
    gamma: f64,
    art: &Artifact,
) -> Result<Bundle, ArtifactError> {
    let ds = build_dataset(cfg);
    let net = Arc::new(art.graph()?);
    if !same_network(&net, &ds.net) {
        return Err(ArtifactError::Malformed("artifact graph does not match the dataset network"));
    }
    let node2vec = art.embeddings()?;
    if node2vec.rows() != net.num_segments() {
        return Err(ArtifactError::Malformed("embedding rows do not match the segment count"));
    }
    let train = ds.samples(Split::Train, gamma, 71);
    let test = ds.samples(Split::Test, gamma, 72);
    let mut planner = RoutePlanner::untrained(&net);
    for s in &train {
        planner.observe(&s.route.segs);
    }
    Ok(Bundle { ds, net, planner: Arc::new(planner), node2vec, train, test, gamma })
}

/// Bit-level equality of two networks: node position bits, segment
/// endpoints and classes (geometry and lengths are derived from these).
fn same_network(a: &RoadNetwork, b: &RoadNetwork) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_segments() == b.num_segments()
        && (0..a.num_nodes()).all(|i| {
            let (p, q) = (a.node_pos(NodeId(i as u32)), b.node_pos(NodeId(i as u32)));
            p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits()
        })
        && a.segments()
            .iter()
            .zip(b.segments())
            .all(|(s, t)| s.from == t.from && s.to == t.to && s.class == t.class)
}

/// One measured cold-start path (`BENCH_*.json` → `"cold_start"`).
#[derive(Debug, Clone)]
pub struct ColdStartRow {
    /// `"dist_table_build"` (in-process Dijkstra sweeps) or
    /// `"artifact_load"` (validate the image, serve the table from it).
    pub source: String,
    /// Wall-clock milliseconds to a query-ready distance table.
    pub cold_start_ms: f64,
    /// Speedup over the in-process build (the build row's own is 1).
    pub speedup: f64,
    /// Whether this path's table answers bitwise-identically to the
    /// freshly built reference over every stored pair.
    pub identical: bool,
    /// Records in the resulting table.
    pub table_records: usize,
}

/// Measures both cold-start paths to a query-ready distance table: the
/// in-process `DistTable::build` at `delta`, and decoding `image`
/// (header + CRC validation) then serving the table zero-copy from it.
/// The loaded table is checked bitwise against the built one — equal
/// record counts and identical distance bits for every stored pair.
#[must_use]
pub fn bench_cold_start(net: &RoadNetwork, delta: f64, image: Vec<u8>) -> Vec<ColdStartRow> {
    let t0 = Instant::now();
    let built = DistTable::build(net, delta);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let art = Artifact::decode(image).expect("artifact image validates");
    let loaded = art.dist_table().expect("artifact has a dist_table section");
    let load_ms = t1.elapsed().as_secs_f64() * 1e3;

    let mut identical =
        built.len() == loaded.len() && built.delta().to_bits() == loaded.delta().to_bits();
    built.for_each_pair(|s, d, dist| {
        identical &= loaded.query(NodeId(s), NodeId(d)).map(f64::to_bits) == Some(dist.to_bits());
    });

    vec![
        ColdStartRow {
            source: "dist_table_build".to_string(),
            cold_start_ms: build_ms,
            speedup: 1.0,
            identical: true,
            table_records: built.len(),
        },
        ColdStartRow {
            source: "artifact_load".to_string(),
            cold_start_ms: load_ms,
            speedup: if load_ms > 0.0 { build_ms / load_ms } else { f64::INFINITY },
            identical,
            table_records: loaded.len(),
        },
    ]
}

/// Appends the `"cold_start"` array to a benchmark document (no-op on a
/// non-object, which the callers never produce).
pub fn attach_cold_start(doc: &mut Value, rows: &[ColdStartRow]) {
    if let Value::Object(fields) = doc {
        fields.push(("cold_start".to_string(), cold_start_to_json(rows)));
    }
}

/// The `"cold_start"` rows as a JSON array.
#[must_use]
pub fn cold_start_to_json(rows: &[ColdStartRow]) -> Value {
    Value::Array(
        rows.iter()
            .map(|r| {
                crate::json!({
                    "source": r.source,
                    "cold_start_ms": r.cold_start_ms,
                    "speedup_vs_build": r.speedup,
                    "identical_to_built": r.identical,
                    "table_records": r.table_records,
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_core::SectionKind;

    fn tiny_bundle() -> Bundle {
        Bundle::prepare(&DatasetConfig::tiny(), 0.2, 8)
    }

    #[test]
    fn image_round_trips_through_prepare() {
        let bundle = tiny_bundle();
        let image = build_image(&bundle, &[("mma", b"blob".to_vec())], 400.0, None);
        let art = Artifact::decode(image).unwrap();
        assert_eq!(art.sections().len(), 4);
        assert!(art.sections().iter().any(|s| s.kind == SectionKind::Params as u16));

        let loaded = prepare_from_artifact(&DatasetConfig::tiny(), 0.2, &art).unwrap();
        assert!(same_network(&loaded.net, &bundle.net));
        assert_eq!(loaded.node2vec.data(), bundle.node2vec.data());
        assert_eq!(loaded.train.len(), bundle.train.len());
        assert_eq!(loaded.test.len(), bundle.test.len());
        assert_eq!(art.params_blob("mma").unwrap(), b"blob");
    }

    #[test]
    fn sharded_image_serves_an_equivalent_network() {
        let bundle = tiny_bundle();
        let image = build_image(&bundle, &[], 400.0, Some(4));
        let art = Artifact::decode(image).unwrap();
        assert!(art.sections().iter().any(|s| s.kind == SectionKind::Shards as u16));

        let built = build_sharded(&bundle.net, 4, 400.0);
        let served = art.sharded_network(bundle.net.clone()).unwrap();
        assert_eq!(served.num_shards(), built.num_shards());
        assert_eq!(served.plan().assignment(), built.plan().assignment());
        for i in 0..bundle.net.num_nodes().min(24) {
            for j in 0..bundle.net.num_nodes().min(24) {
                let (a, b) = (NodeId(i as u32), NodeId(j as u32));
                assert_eq!(
                    served.node_dist(a, b).map(f64::to_bits),
                    built.node_dist(a, b).map(f64::to_bits),
                    "served shard distance diverged for {a:?}→{b:?}"
                );
            }
        }
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let bundle = tiny_bundle();
        let image = build_image(&bundle, &[], 400.0, None);
        let art = Artifact::decode(image).unwrap();
        // A different dataset generates a different network.
        let mut other = DatasetConfig::tiny();
        other.net.seed = other.net.seed.wrapping_add(1);
        assert!(matches!(
            prepare_from_artifact(&other, 0.2, &art),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn cold_start_rows_are_identical_and_positive() {
        let bundle = tiny_bundle();
        let image = build_image(&bundle, &[], 400.0, None);
        let rows = bench_cold_start(&bundle.net, 400.0, image);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].source, "dist_table_build");
        assert_eq!(rows[1].source, "artifact_load");
        for r in &rows {
            assert!(r.identical, "{} diverged from the built table", r.source);
            assert!(r.cold_start_ms >= 0.0);
            assert!(r.table_records > 0);
        }
        assert_eq!(rows[0].table_records, rows[1].table_records);

        let mut doc = Value::Object(vec![]);
        attach_cold_start(&mut doc, &rows);
        let s = crate::json::to_string_pretty(&doc);
        assert!(s.contains("\"cold_start\""));
        assert!(s.contains("\"cold_start_ms\""));
        assert!(s.contains("\"identical_to_built\": true"));
    }
}
