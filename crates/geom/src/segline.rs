use crate::{BBox, Vec2};

/// A directed straight line segment in the local planar frame, from the
/// entrance node towards the exit node of a road segment (Definition 1).
///
/// Position ratios (Definition 5) are measured from [`SegLine::a`]: ratio 0
/// is the entrance, ratio 1 the exit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegLine {
    /// Entrance endpoint.
    pub a: Vec2,
    /// Exit endpoint.
    pub b: Vec2,
}

impl SegLine {
    /// Creates a segment from entrance `a` to exit `b`.
    #[must_use]
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Self { a, b }
    }

    /// Length in metres.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Direction vector from entrance to exit (not normalised).
    #[must_use]
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// The point at position ratio `r ∈ [0, 1]` along the segment.
    #[must_use]
    pub fn point_at(&self, r: f64) -> Vec2 {
        self.a.lerp(self.b, r.clamp(0.0, 1.0))
    }

    /// Projects `p` orthogonally onto the segment, clamped to the segment
    /// extent. Returns the position ratio in `[0, 1]`.
    ///
    /// This is the operation of Algorithm 2 line 4 ("get `a_i.r` by
    /// orthogonal projection of `p_i` to `e_i`").
    #[must_use]
    pub fn project_ratio(&self, p: Vec2) -> f64 {
        let d = self.direction();
        let len_sq = d.dot(d);
        if len_sq <= f64::EPSILON {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The closest point on the segment to `p`.
    #[must_use]
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        self.point_at(self.project_ratio(p))
    }

    /// Perpendicular (clamped) distance from `p` to the segment in metres —
    /// the ranking key of the candidate set (Definition 8).
    #[must_use]
    pub fn distance_to(&self, p: Vec2) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Squared distance from `p` to the segment; cheaper for comparisons.
    #[must_use]
    pub fn distance_sq_to(&self, p: Vec2) -> f64 {
        self.closest_point(p).dist_sq(p)
    }

    /// Axis-aligned bounding box of the segment.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::of_points(&[self.a, self.b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> SegLine {
        SegLine::new(Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0))
    }

    #[test]
    fn length_and_direction() {
        assert_eq!(seg().length(), 10.0);
        assert_eq!(seg().direction(), Vec2::new(10.0, 0.0));
    }

    #[test]
    fn projection_inside_segment() {
        let r = seg().project_ratio(Vec2::new(3.0, 5.0));
        assert!((r - 0.3).abs() < 1e-12);
        assert_eq!(seg().closest_point(Vec2::new(3.0, 5.0)), Vec2::new(3.0, 0.0));
        assert!((seg().distance_to(Vec2::new(3.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_before_entrance() {
        let r = seg().project_ratio(Vec2::new(-4.0, 3.0));
        assert_eq!(r, 0.0);
        assert!((seg().distance_to(Vec2::new(-4.0, 3.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_after_exit() {
        let r = seg().project_ratio(Vec2::new(14.0, -3.0));
        assert_eq!(r, 1.0);
        assert!((seg().distance_to(Vec2::new(14.0, -3.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_projects_to_entrance() {
        let s = SegLine::new(Vec2::new(2.0, 2.0), Vec2::new(2.0, 2.0));
        assert_eq!(s.project_ratio(Vec2::new(9.0, 9.0)), 0.0);
        assert_eq!(s.closest_point(Vec2::new(9.0, 9.0)), Vec2::new(2.0, 2.0));
    }

    #[test]
    fn point_at_clamps_ratio() {
        let s = seg();
        assert_eq!(s.point_at(-0.5), s.a);
        assert_eq!(s.point_at(1.5), s.b);
        assert_eq!(s.point_at(0.25), Vec2::new(2.5, 0.0));
    }

    #[test]
    fn bbox_covers_endpoints() {
        let s = SegLine::new(Vec2::new(3.0, -2.0), Vec2::new(-1.0, 7.0));
        let bb = s.bbox();
        assert_eq!(bb.min, Vec2::new(-1.0, -2.0));
        assert_eq!(bb.max, Vec2::new(3.0, 7.0));
    }
}
