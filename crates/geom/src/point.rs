/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A raw WGS-84 coordinate, as found in GPS trajectories (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lng: f64,
}

impl GeoPoint {
    /// Creates a new geographic point.
    #[must_use]
    pub fn new(lat: f64, lng: f64) -> Self {
        Self { lat, lng }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    #[must_use]
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lng1) = (self.lat.to_radians(), self.lng.to_radians());
        let (lat2, lng2) = (other.lat.to_radians(), other.lng.to_radians());
        let dlat = lat2 - lat1;
        let dlng = lng2 - lng1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// A position or displacement in the local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East component (metres).
    pub x: f64,
    /// North component (metres).
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector from components.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root in hot
    /// k-NN loops).
    #[must_use]
    pub fn dist_sq(self, other: Vec2) -> f64 {
        let d = self - other;
        d.dot(d)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[must_use]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl std::ops::Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Equirectangular projection around a reference point.
///
/// For city-scale extents the distortion relative to the haversine distance
/// is below 0.1 %, i.e. centimetres — negligible next to GPS noise. The
/// projection is exactly invertible, so datasets can round-trip between
/// WGS-84 storage and planar processing.
#[derive(Debug, Clone, Copy)]
pub struct Projector {
    origin: GeoPoint,
    cos_lat: f64,
}

impl Projector {
    /// Creates a projector centred on `origin`.
    #[must_use]
    pub fn new(origin: GeoPoint) -> Self {
        Self { origin, cos_lat: origin.lat.to_radians().cos() }
    }

    /// The reference point of the projection.
    #[must_use]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic coordinate to local metres.
    #[must_use]
    pub fn project(&self, p: GeoPoint) -> Vec2 {
        let x = (p.lng - self.origin.lng).to_radians() * self.cos_lat * EARTH_RADIUS_M;
        let y = (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        Vec2::new(x, y)
    }

    /// Inverse projection from local metres back to WGS-84.
    #[must_use]
    pub fn unproject(&self, v: Vec2) -> GeoPoint {
        let lat = self.origin.lat + (v.y / EARTH_RADIUS_M).to_degrees();
        let lng = self.origin.lng + (v.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        GeoPoint::new(lat, lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // Porto city centre to Vila Nova de Gaia across the Douro: ~2 km.
        let a = GeoPoint::new(41.1496, -8.6109);
        let b = GeoPoint::new(41.1333, -8.6167);
        let d = a.haversine_m(&b);
        assert!(d > 1_500.0 && d < 2_500.0, "d = {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = GeoPoint::new(39.9, 116.4);
        assert_eq!(a.haversine_m(&a), 0.0);
    }

    #[test]
    fn projection_round_trips() {
        let proj = Projector::new(GeoPoint::new(41.15, -8.61));
        let p = GeoPoint::new(41.1623, -8.5987);
        let back = proj.unproject(proj.project(p));
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lng - p.lng).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_distance_at_city_scale() {
        let proj = Projector::new(GeoPoint::new(30.66, 104.06)); // Chengdu
        let a = GeoPoint::new(30.70, 104.10);
        let b = GeoPoint::new(30.62, 104.02);
        let planar = proj.project(a).dist(proj.project(b));
        let geodesic = a.haversine_m(&b);
        let rel_err = (planar - geodesic).abs() / geodesic;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn vec2_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert!((a.dot(b) - 1.0).abs() < 1e-12);
        assert!((Vec2::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
    }
}
