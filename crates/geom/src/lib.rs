//! Geometry primitives for road-network trajectory processing.
//!
//! Everything downstream (the R-tree, the road network, map matching, the
//! trajectory generator) works in a **local planar frame** measured in
//! metres: a [`Vec2`] is an `(x, y)` position, produced from raw WGS-84
//! coordinates by a [`Projector`] (equirectangular projection around a
//! dataset-specific reference point). This matches what the paper's datasets
//! do implicitly — city-scale extents (≤ 30 km, Table II) where the
//! equirectangular error is far below GPS noise (≈ 5–30 m).
//!
//! The crate provides:
//!
//! * [`GeoPoint`] — raw latitude/longitude with haversine distance;
//! * [`Projector`] — lat/lng ↔ local metres;
//! * [`Vec2`] — planar vector algebra (dot, norm, cosine similarity — the
//!   direction features of MMA §IV-B);
//! * [`SegLine`] — a directed straight segment with point projection,
//!   perpendicular distance and position-ratio computation (Definition 5);
//! * [`BBox`] — axis-aligned bounding boxes used by the STR R-tree.
//!
//! # Example
//!
//! Project a noisy GPS position onto a road segment — the core geometric
//! step of every matcher in the workspace:
//!
//! ```
//! use trmma_geom::{SegLine, Vec2};
//!
//! let road = SegLine::new(Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0));
//! let gps = Vec2::new(40.0, 3.0); // 3 m of lateral noise
//! assert!((road.distance_to(gps) - 3.0).abs() < 1e-12);
//! assert!((road.project_ratio(gps) - 0.4).abs() < 1e-12);
//! assert_eq!(road.closest_point(gps), Vec2::new(40.0, 0.0));
//! ```

mod bbox;
mod point;
mod segline;

pub use bbox::BBox;
pub use point::{GeoPoint, Projector, Vec2, EARTH_RADIUS_M};
pub use segline::SegLine;

/// Cosine similarity between two planar vectors.
///
/// Returns 0 when either vector is (numerically) zero, which is the neutral
/// value for the direction features of MMA: a stationary GPS pair carries no
/// directional information.
#[must_use]
pub fn cosine_similarity(a: Vec2, b: Vec2) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    (a.dot(b) / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(6.0, 8.0);
        assert!((cosine_similarity(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_antiparallel_vectors_is_minus_one() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(-2.0, 0.0);
        assert!((cosine_similarity(a, b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 5.0);
        assert!(cosine_similarity(a, b).abs() < 1e-12);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 1.0);
        assert_eq!(cosine_similarity(a, b), 0.0);
        assert_eq!(cosine_similarity(b, a), 0.0);
    }
}
