use crate::Vec2;

/// An axis-aligned bounding box in the local planar frame.
///
/// Used as the key of R-tree nodes; supports the `mindist` lower bound that
/// drives best-first k-NN search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl BBox {
    /// An "empty" box that absorbs any point/box on union.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            min: Vec2::new(f64::INFINITY, f64::INFINITY),
            max: Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Bounding box of a point set. Returns [`BBox::empty`] for an empty set.
    #[must_use]
    pub fn of_points(pts: &[Vec2]) -> Self {
        let mut bb = Self::empty();
        for p in pts {
            bb.expand_point(*p);
        }
        bb
    }

    /// Whether the box contains no area (never expanded).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the box to cover `p`.
    pub fn expand_point(&mut self, p: Vec2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box to cover `other`.
    pub fn expand_bbox(&mut self, other: &BBox) {
        if other.is_empty() {
            return;
        }
        self.expand_point(other.min);
        self.expand_point(other.max);
    }

    /// Union of two boxes.
    #[must_use]
    pub fn union(&self, other: &BBox) -> BBox {
        let mut bb = *self;
        bb.expand_bbox(other);
        bb
    }

    /// Whether `p` lies inside (inclusive).
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two boxes overlap (inclusive).
    #[must_use]
    pub fn intersects(&self, other: &BBox) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Centre of the box.
    #[must_use]
    pub fn center(&self) -> Vec2 {
        Vec2::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }

    /// Squared minimum distance from `p` to the box (0 if inside).
    ///
    /// This is the classic `MINDIST` lower bound: no geometry inside the box
    /// can be closer to `p` than this, which makes best-first k-NN correct.
    #[must_use]
    pub fn min_dist_sq(&self, p: Vec2) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_absorbs() {
        let mut bb = BBox::empty();
        assert!(bb.is_empty());
        bb.expand_point(Vec2::new(1.0, 2.0));
        assert!(!bb.is_empty());
        assert_eq!(bb.min, Vec2::new(1.0, 2.0));
        assert_eq!(bb.max, Vec2::new(1.0, 2.0));
    }

    #[test]
    fn union_covers_both() {
        let a = BBox::of_points(&[Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)]);
        let b = BBox::of_points(&[Vec2::new(2.0, -1.0), Vec2::new(3.0, 0.5)]);
        let u = a.union(&b);
        assert!(u.contains(Vec2::new(0.0, 0.0)));
        assert!(u.contains(Vec2::new(3.0, 0.5)));
        assert_eq!(u.min, Vec2::new(0.0, -1.0));
        assert_eq!(u.max, Vec2::new(3.0, 1.0));
    }

    #[test]
    fn intersects_is_inclusive_on_edges() {
        let a = BBox::of_points(&[Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)]);
        let b = BBox::of_points(&[Vec2::new(1.0, 1.0), Vec2::new(2.0, 2.0)]);
        let c = BBox::of_points(&[Vec2::new(1.1, 1.1), Vec2::new(2.0, 2.0)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn min_dist_sq_zero_inside() {
        let bb = BBox::of_points(&[Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0)]);
        assert_eq!(bb.min_dist_sq(Vec2::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn min_dist_sq_to_corner_and_edge() {
        let bb = BBox::of_points(&[Vec2::new(0.0, 0.0), Vec2::new(4.0, 4.0)]);
        // 3-4-5 triangle to the corner (7, 8).
        assert!((bb.min_dist_sq(Vec2::new(7.0, 8.0)) - 25.0).abs() < 1e-12);
        // Straight out from an edge.
        assert!((bb.min_dist_sq(Vec2::new(-3.0, 2.0)) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_boxes_never_intersect() {
        let e = BBox::empty();
        let bb = BBox::of_points(&[Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)]);
        assert!(!e.intersects(&bb));
        assert!(!bb.intersects(&e));
    }
}
