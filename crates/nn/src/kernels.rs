//! Flat-slice compute kernels for the inference hot path.
//!
//! Everything here operates on plain `&[f64]` buffers with the bounds
//! checks hoisted out of the inner loops (length asserts up front, then
//! exact-size iterators the optimizer can vectorize). Each kernel is a
//! drop-in replacement for a scalar loop elsewhere in the workspace and is
//! **bitwise-identical** to it: either the elements are independent (so
//! chunking cannot reassociate anything), or the kernel replays the exact
//! accumulation order of the loop it replaces. `tests/props_tail.rs` pins
//! the equivalences down property-style.

/// Gathers `ids`-selected rows of a row-major `rows × cols` table into
/// `out` (cleared first). Replaces the per-row `extend_from_slice` loops in
/// [`crate::Graph::embed_param`] / [`crate::Graph::gather_rows`]: indices
/// are validated in one pass up front, then each row is a straight memcpy.
///
/// # Panics
/// Panics if `src.len() != rows * cols` or any id is out of range.
pub fn gather_rows_into(src: &[f64], rows: usize, cols: usize, ids: &[usize], out: &mut Vec<f64>) {
    assert_eq!(src.len(), rows * cols, "src is not rows × cols");
    assert!(ids.iter().all(|&ix| ix < rows), "gather index out of range");
    out.clear();
    out.reserve(ids.len() * cols);
    for &ix in ids {
        out.extend_from_slice(&src[ix * cols..(ix + 1) * cols]);
    }
}

/// Writes the log Gaussian emission `-0.5 · (d / sigma)²` of every distance
/// into `out` (cleared first), unrolled four lanes wide. Elements are
/// independent, so the chunking changes nothing about the result — each
/// output is exactly the scalar expression the HMM emission closure
/// computes.
pub fn gaussian_log_emission_into(dist_m: &[f64], sigma: f64, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(dist_m.len());
    let mut chunks = dist_m.chunks_exact(4);
    for c in &mut chunks {
        let z0 = c[0] / sigma;
        let z1 = c[1] / sigma;
        let z2 = c[2] / sigma;
        let z3 = c[3] / sigma;
        out.extend_from_slice(&[-0.5 * z0 * z0, -0.5 * z1 * z1, -0.5 * z2 * z2, -0.5 * z3 * z3]);
    }
    for &d in chunks.remainder() {
        let z = d / sigma;
        out.push(-0.5 * z * z);
    }
}

/// Matrix–vector product `out[i] += row_i(lhs) · x` over a row-major
/// `out.len() × x.len()` left-hand side, skipping zero coefficients.
///
/// This is [`crate::Matrix::matmul_into`]'s inner loop specialised to a
/// single output column: same zero-skip, same add order per output element,
/// with the accumulator held in a register instead of re-reading `out[i]`
/// per term — bitwise-identical by construction, measurably faster on the
/// `kc × d2 · d2 × 1` logit products that dominate MMA scoring.
///
/// # Panics
/// Panics if `lhs.len() != out.len() * x.len()`.
pub fn matvec_skip_zero(lhs: &[f64], x: &[f64], out: &mut [f64]) {
    assert_eq!(lhs.len(), out.len() * x.len(), "matvec shape mismatch");
    for (o, row) in out.iter_mut().zip(lhs.chunks_exact(x.len())) {
        let mut acc = *o;
        for (&a, &b) in row.iter().zip(x.iter()) {
            if a == 0.0 {
                continue;
            }
            acc += a * b;
        }
        *o = acc;
    }
}

/// Index of the maximum element, first occurrence winning ties via strict
/// `>` — the tie-breaking every decoder in this workspace relies on.
/// Returns 0 for an empty slice.
#[must_use]
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows_matches_manual_copy() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![99.0]; // cleared by the kernel
        gather_rows_into(&src, 3, 2, &[2, 0, 2], &mut out);
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "gather index out of range")]
    fn gather_rows_validates_ids() {
        let mut out = Vec::new();
        gather_rows_into(&[1.0, 2.0], 2, 1, &[2], &mut out);
    }

    #[test]
    fn gaussian_emission_matches_scalar_for_all_lengths() {
        let sigma = 4.07;
        for n in 0..13 {
            let dists: Vec<f64> = (0..n).map(|i| i as f64 * 1.37 - 3.0).collect();
            let mut out = Vec::new();
            gaussian_log_emission_into(&dists, sigma, &mut out);
            let want: Vec<f64> = dists
                .iter()
                .map(|&d| {
                    let z = d / sigma;
                    -0.5 * z * z
                })
                .collect();
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matvec_matches_naive_accumulation() {
        let lhs = [1.0, 0.0, -2.5, 0.3, 7.0, 0.0];
        let x = [0.1, 0.2, 0.3];
        let mut out = [0.0, 0.0];
        matvec_skip_zero(&lhs, &x, &mut out);
        // Naive replay of matmul_into's order.
        let mut want = [0.0, 0.0];
        for i in 0..2 {
            for k in 0..3 {
                let a = lhs[i * 3 + k];
                if a == 0.0 {
                    continue;
                }
                want[i] += a * x[k];
            }
        }
        assert_eq!(out[0].to_bits(), want[0].to_bits());
        assert_eq!(out[1].to_bits(), want[1].to_bits());
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[1.0]), 0);
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]), 0);
    }
}
