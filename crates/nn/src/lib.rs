//! A minimal neural-network stack with reverse-mode automatic
//! differentiation — the substrate standing in for PyTorch in this
//! reproduction (the paper's models are small: `d = 64`, 2–4 transformer
//! layers, one GRU).
//!
//! Design:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix; all tensors are 2-D
//!   (sequences are `len × dim` matrices), which covers every operation in
//!   the paper and keeps the autograd simple and fast.
//! * [`Graph`] — a per-forward-pass *tape*. Operations are recorded as an
//!   enum ([`graph::Op`]) with parent node ids; [`Graph::backward`]
//!   replays the tape in reverse with a hand-written adjoint per op. No
//!   closures, no reference cycles, trivially testable against finite
//!   differences (see the `grad_check` tests).
//! * [`Param`] — persistent learnable state shared across graphs via
//!   `Rc<RefCell<…>>`; gradients accumulate into the param when the graph
//!   is back-propagated, and [`Adam`] consumes them.
//! * [`layers`] — the modules the paper uses: [`Linear`], [`Mlp`],
//!   [`LayerNorm`], [`MultiHeadAttention`], [`TransformerEncoder`] (Eq. 4–6)
//!   and [`GruCell`] (the decoder of TRMMA), plus sinusoidal positional
//!   encodings.
//!
//! Everything is deterministic given a seed.
//!
//! # Example
//!
//! Record a tiny forward pass on the tape and read a hand-checkable
//! gradient back out:
//!
//! ```
//! use trmma_nn::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Matrix::from_rows(&[vec![2.0, 3.0]]));
//! let y = g.mul(x, x);        // elementwise square
//! let loss = g.sum_all(y);    // loss = Σ x² = 13
//! assert!((g.value(loss).get(0, 0) - 13.0).abs() < 1e-12);
//! g.backward(loss);
//! // d loss / d x = 2x
//! let grad = g.grad(x);
//! assert_eq!((grad.get(0, 0), grad.get(0, 1)), (4.0, 6.0));
//! ```

pub mod graph;
pub mod kernels;
pub mod layers;
pub mod matrix;
pub mod optim;
pub mod param;
pub mod serialize;

pub use graph::{Graph, NodeId};
pub use layers::{
    positional_encoding, GruCell, LayerNorm, Linear, Mlp, MultiHeadAttention, TransformerEncoder,
};
pub use matrix::Matrix;
pub use optim::{Adam, LrSchedule, Sgd};
pub use param::{Init, Param};
pub use serialize::{load_params, restore, save_params, snapshot, LoadError};

#[cfg(test)]
mod grad_check;
