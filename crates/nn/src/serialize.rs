//! Weight persistence: snapshot, save and load parameter collections.
//!
//! Two layers:
//!
//! * [`snapshot`] / [`restore`] — in-memory copies of parameter values,
//!   used by validation-based early stopping (keep the best epoch);
//! * [`save_params`] / [`load_params`] — a versioned little-endian binary
//!   format so trained MMA/TRMMA models can be written to disk and reloaded
//!   without retraining.
//!
//! The format is `MAGIC (4) | version (u32) | count (u32) | {rows (u32),
//! cols (u32), values (f64 × rows·cols)}*`. Loading validates the magic,
//! version, parameter count and every shape before touching any value, so
//! a failed load never leaves the model half-written.

use crate::matrix::Matrix;
use crate::param::Param;

/// Little-endian cursor over a byte slice (local stand-in for `bytes::Buf`).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        head
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

const MAGIC: &[u8; 4] = b"TNN1";
const VERSION: u32 = 1;

/// Errors raised by [`load_params`].
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Not a weight file (bad magic) or truncated header.
    BadHeader,
    /// File version newer than this library understands.
    UnsupportedVersion(u32),
    /// Parameter count in the file differs from the model's.
    CountMismatch {
        /// Parameters expected by the model.
        expected: usize,
        /// Parameters present in the file.
        found: usize,
    },
    /// A parameter's shape differs from the model's.
    ShapeMismatch {
        /// Index of the offending parameter.
        index: usize,
    },
    /// The buffer ended before all declared values were read.
    Truncated,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "not a trmma-nn weight blob"),
            LoadError::UnsupportedVersion(v) => write!(f, "unsupported weight version {v}"),
            LoadError::CountMismatch { expected, found } => {
                write!(f, "parameter count mismatch: model has {expected}, file has {found}")
            }
            LoadError::ShapeMismatch { index } => {
                write!(f, "shape mismatch at parameter {index}")
            }
            LoadError::Truncated => write!(f, "weight blob truncated"),
        }
    }
}

impl std::error::Error for LoadError {}

/// In-memory copies of the parameter values (cheap early-stopping state).
#[must_use]
pub fn snapshot(params: &[Param]) -> Vec<Matrix> {
    params.iter().map(Param::value).collect()
}

/// Restores values captured by [`snapshot`].
///
/// # Panics
/// Panics on count or shape mismatch — snapshots are only valid for the
/// parameter collection they were taken from.
pub fn restore(params: &[Param], saved: &[Matrix]) {
    assert_eq!(params.len(), saved.len(), "snapshot/param count mismatch");
    for (p, m) in params.iter().zip(saved) {
        p.set_value(m.clone());
    }
}

/// Serialises the parameter collection to a portable binary blob.
///
/// # Panics
/// Panics if the parameter count or any shape dimension exceeds `u32::MAX`
/// — the format's fixed-width fields cannot represent it, and silently
/// truncating the cast would produce a blob that *loads* into a
/// differently-shaped model. No real model comes within orders of
/// magnitude of this.
#[must_use]
pub fn save_params(params: &[Param]) -> Vec<u8> {
    let field = |n: usize, what: &str| -> u32 {
        u32::try_from(n).unwrap_or_else(|_| panic!("{what} {n} exceeds the u32 field"))
    };
    let total: usize = params.iter().map(Param::num_weights).sum();
    let mut buf = Vec::with_capacity(12 + params.len() * 8 + total * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&field(params.len(), "parameter count").to_le_bytes());
    for p in params {
        let v = p.value();
        buf.extend_from_slice(&field(v.rows(), "row count").to_le_bytes());
        buf.extend_from_slice(&field(v.cols(), "column count").to_le_bytes());
        for &x in v.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    buf
}

/// Loads a blob produced by [`save_params`] into `params`.
///
/// All validation happens before any parameter is modified.
///
/// # Errors
/// See [`LoadError`].
pub fn load_params(params: &[Param], blob: &[u8]) -> Result<(), LoadError> {
    let mut buf = Reader { buf: blob };
    if buf.remaining() < 12 {
        return Err(LoadError::BadHeader);
    }
    if buf.take(4) != MAGIC {
        return Err(LoadError::BadHeader);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(LoadError::UnsupportedVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    if count != params.len() {
        return Err(LoadError::CountMismatch { expected: params.len(), found: count });
    }
    // First pass: parse everything into matrices, validating shapes.
    let mut loaded = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        if buf.remaining() < 8 {
            return Err(LoadError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if (rows, cols) != p.shape() {
            return Err(LoadError::ShapeMismatch { index: i });
        }
        if buf.remaining() < rows * cols * 8 {
            return Err(LoadError::Truncated);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(buf.get_f64_le());
        }
        loaded.push(Matrix::from_vec(rows, cols, data));
    }
    // Second pass: commit.
    for (p, m) in params.iter().zip(loaded) {
        p.set_value(m);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> Vec<Param> {
        let mut rng = StdRng::seed_from_u64(5);
        vec![
            Param::new(3, 4, Init::Xavier, &mut rng),
            Param::new(1, 7, Init::Uniform(0.3), &mut rng),
            Param::new(2, 2, Init::Zeros, &mut rng),
        ]
    }

    #[test]
    fn save_load_round_trips() {
        let src = params();
        let blob = save_params(&src);
        let dst = params(); // same shapes, same init seed
                            // Perturb destination so the load visibly changes it.
        dst[0].set_value(Matrix::zeros(3, 4));
        load_params(&dst, &blob).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value().data(), b.value().data());
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let ps = params();
        let saved = snapshot(&ps);
        ps[1].set_value(Matrix::full(1, 7, 9.0));
        restore(&ps, &saved);
        assert_ne!(ps[1].value().data(), Matrix::full(1, 7, 9.0).data());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let ps = params();
        assert_eq!(load_params(&ps, b"nope"), Err(LoadError::BadHeader));
        let blob = save_params(&ps);
        let cut = &blob[..blob.len() / 2];
        assert!(matches!(
            load_params(&ps, cut),
            Err(LoadError::Truncated) | Err(LoadError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_shape_and_count_mismatch() {
        let ps = params();
        let blob = save_params(&ps);
        let fewer = &ps[..2];
        assert_eq!(
            load_params(fewer, &blob),
            Err(LoadError::CountMismatch { expected: 2, found: 3 })
        );
        let mut rng = StdRng::seed_from_u64(9);
        let wrong_shape = vec![
            Param::new(4, 3, Init::Zeros, &mut rng), // transposed shape
            Param::new(1, 7, Init::Zeros, &mut rng),
            Param::new(2, 2, Init::Zeros, &mut rng),
        ];
        assert_eq!(load_params(&wrong_shape, &blob), Err(LoadError::ShapeMismatch { index: 0 }));
        // Failed load must not have modified anything.
        assert!(wrong_shape[1].value().data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn error_display_strings() {
        assert!(LoadError::BadHeader.to_string().contains("weight blob"));
        assert!(LoadError::ShapeMismatch { index: 3 }.to_string().contains('3'));
    }
}
