//! The autograd tape.
//!
//! A [`Graph`] records one forward pass as a topologically ordered vector of
//! nodes; each node stores its value, the [`Op`] that produced it, and — once
//! [`Graph::backward`] runs — its gradient. Adjoints are hand-written per op
//! in the private `backprop_node` dispatcher and validated against central finite
//! differences in the `grad_check` test module.

use crate::matrix::Matrix;
use crate::param::Param;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// The operation that produced a node (parents by id).
#[derive(Debug, Clone)]
pub enum Op {
    /// Constant input or parameter leaf.
    Leaf,
    /// `A · B`.
    MatMul(NodeId, NodeId),
    /// `A + B`, same shape.
    Add(NodeId, NodeId),
    /// `A + v` with `v` a `1 × cols` row broadcast over rows.
    AddRow(NodeId, NodeId),
    /// `A ∘ B`, same shape.
    Mul(NodeId, NodeId),
    /// `A ∘ v` with `v` a `1 × cols` row broadcast over rows.
    MulRow(NodeId, NodeId),
    /// `c · A`.
    Scale(NodeId, f64),
    /// `A + c` element-wise.
    AddScalar(NodeId, f64),
    /// `max(0, A)`.
    Relu(NodeId),
    /// Logistic sigmoid.
    Sigmoid(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise standardisation `(x − μ) / sqrt(σ² + ε)` (no affine).
    LayerNormRows(NodeId),
    /// Horizontal concatenation.
    ConcatCols(Vec<NodeId>),
    /// Vertical concatenation.
    ConcatRows(Vec<NodeId>),
    /// Rows `[start, start + rows)` of the parent.
    SliceRows(NodeId, usize),
    /// Matrix transpose.
    Transpose(NodeId),
    /// Column means over rows → `1 × cols`.
    MeanRows(NodeId),
    /// Sum of all elements → `1 × 1`.
    SumAll(NodeId),
    /// Row gather: output row `i` is parent row `indices[i]`.
    GatherRows(NodeId, Vec<usize>),
    /// Mean binary cross-entropy with logits against a constant target.
    BceWithLogits(NodeId, Matrix),
    /// Mean softmax cross-entropy, one target class per row.
    SoftmaxCrossEntropy(NodeId, Vec<usize>),
    /// Mean absolute error against a constant target.
    L1Loss(NodeId, Matrix),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A single forward pass; see module docs.
///
/// A reused `Graph` (see [`Graph::reset`]) doubles as a forward-only
/// **workspace**: the node arena keeps its allocation between passes, so
/// inference loops pay no tape setup per trajectory. (A matrix buffer pool
/// was tried here and measured slower than the system allocator at these
/// matrix sizes — see DESIGN.md §3 — so node *storage* is allocated
/// per-op, deliberately.)
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    bindings: Vec<(usize, Param)>,
    /// Row-gather bindings: `(node, param, row ids)` — the node's gradient
    /// rows scatter-add into the param's gradient rows on backward.
    gathers: Vec<(usize, Param, Vec<usize>)>,
}

impl Graph {
    /// An empty tape.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for a fresh forward pass, keeping the node arena's
    /// allocation. Inference loops (one tape per trajectory) reuse a
    /// single `Graph` this way instead of reallocating the tape per call —
    /// the scratch-buffer half of the batched inference engine.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.bindings.clear();
        self.gathers.clear();
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> NodeId {
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        NodeId(self.nodes.len() - 1)
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// The forward value of a node.
    #[must_use]
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of a node after [`Graph::backward`] (zeros if the node
    /// was not reached).
    #[must_use]
    pub fn grad(&self, id: NodeId) -> Matrix {
        let n = &self.nodes[id.0];
        n.grad.clone().unwrap_or_else(|| Matrix::zeros(n.value.rows(), n.value.cols()))
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---------------------------------------------------------------- leaves

    /// A constant input (no gradient).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf, false)
    }

    /// A differentiable leaf *not* tied to a [`Param`] (used by tests).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf, true)
    }

    /// Binds a [`Param`]: the node takes the param's current value and its
    /// gradient flushes back into the param on [`Graph::backward`].
    ///
    /// Rebinding the same param within one tape returns the existing node:
    /// the value copy is paid once, and the flushed gradient is the same
    /// sum either way.
    pub fn param(&mut self, p: &Param) -> NodeId {
        if let Some(&(idx, _)) = self.bindings.iter().find(|(_, q)| q.same_as(p)) {
            return NodeId(idx);
        }
        let id = self.push(p.value(), Op::Leaf, true);
        self.bindings.push((id.0, p.clone()));
        id
    }

    /// Embedding lookup straight out of a [`Param`] table: the node's value
    /// is the gathered `ids.len() × d` rows, and its gradient rows
    /// scatter-add into the param's gradient on [`Graph::backward`].
    ///
    /// Equivalent to `gather_rows(param(p), ids)` — same values, same
    /// flushed gradients — but never materialises the full `n × d` table
    /// on the tape or an `n × d` gradient buffer. For MMA, which looks up
    /// candidate embeddings once per GPS point, this is the difference
    /// between copying the whole segment table per point and copying
    /// `kc` rows.
    pub fn embed_param(&mut self, p: &Param, ids: &[usize]) -> NodeId {
        let mut buf = Vec::new();
        let value = {
            let inner = p.read();
            let src = &inner.value;
            crate::kernels::gather_rows_into(src.data(), src.rows(), src.cols(), ids, &mut buf);
            Matrix::from_vec(ids.len(), src.cols(), buf)
        };
        let id = self.push(value, Op::Leaf, true);
        self.gathers.push((id.0, p.clone(), ids.to_vec()));
        id
    }

    /// A `1 × 1` constant.
    pub fn scalar(&mut self, v: f64) -> NodeId {
        self.input(Matrix::row_vec(vec![v]))
    }

    // ------------------------------------------------------------------ ops

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut v = Matrix::zeros(self.nodes[a.0].value.rows(), self.nodes[b.0].value.cols());
        self.nodes[a.0].value.matmul_into(&self.nodes[b.0].value, &mut v);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape(), "add shape");
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// `a + row` (row broadcast over `a`'s rows).
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!(self.nodes[row.0].value.shape(), (1, c), "add_row shape");
        let mut v = self.nodes[a.0].value.clone();
        let rv = &self.nodes[row.0].value;
        for i in 0..r {
            for (x, y) in v.row_mut(i).iter_mut().zip(rv.row(0)) {
                *x += y;
            }
        }
        let ng = self.needs(a) || self.needs(row);
        self.push(v, Op::AddRow(a, row), ng)
    }

    /// `a ∘ b` (same shape).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape(), "mul shape");
        let mut buf = Vec::with_capacity(self.nodes[a.0].value.len());
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        buf.extend(av.data().iter().zip(bv.data().iter()).map(|(x, y)| x * y));
        let v = Matrix::from_vec(bv.rows(), bv.cols(), buf);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// `a ∘ row` (row broadcast).
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!(self.nodes[row.0].value.shape(), (1, c), "mul_row shape");
        let mut v = self.nodes[a.0].value.clone();
        let rv = &self.nodes[row.0].value;
        for i in 0..r {
            for (x, y) in v.row_mut(i).iter_mut().zip(rv.row(0)) {
                *x *= y;
            }
        }
        let ng = self.needs(a) || self.needs(row);
        self.push(v, Op::MulRow(a, row), ng)
    }

    /// `c · a`.
    pub fn scale(&mut self, a: NodeId, c: f64) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| c * x);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, c), ng)
    }

    /// `a + c` element-wise.
    pub fn add_scalar(&mut self, a: NodeId, c: f64) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x + c);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a, c), ng)
    }

    /// `a − b` (same shape), composed from primitives.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.scale(b, -1.0);
        self.add(a, nb)
    }

    /// ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f64::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::SoftmaxRows(a), ng)
    }

    /// Row-wise standardisation (ε = 1e-5). Affine transforms compose via
    /// [`Graph::mul_row`] / [`Graph::add_row`].
    pub fn layer_norm_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        let c = v.cols() as f64;
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let mean = row.iter().sum::<f64>() / c;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c;
            let denom = (var + 1e-5).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) / denom;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::LayerNormRows(a), ng)
    }

    /// Horizontal concatenation (equal row counts).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = Matrix::zeros(rows, total);
        let mut off = 0;
        for p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.rows(), rows, "concat_cols row mismatch");
            for i in 0..rows {
                v.row_mut(i)[off..off + pv.cols()].copy_from_slice(pv.row(i));
            }
            off += pv.cols();
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), ng)
    }

    /// Vertical concatenation (equal column counts).
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.rows()).sum();
        let mut v = Matrix::zeros(total, cols);
        let mut off = 0;
        for p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.cols(), cols, "concat_rows col mismatch");
            for i in 0..pv.rows() {
                v.row_mut(off + i).copy_from_slice(pv.row(i));
            }
            off += pv.rows();
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatRows(parts.to_vec()), ng)
    }

    /// Rows `[start, start + len)` of `a`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let mut buf = Vec::with_capacity(len * self.nodes[a.0].value.cols());
        let src = &self.nodes[a.0].value;
        assert!(start + len <= src.rows(), "slice_rows out of range");
        let cols = src.cols();
        buf.extend_from_slice(&src.data()[start * cols..(start + len) * cols]);
        let v = Matrix::from_vec(len, cols, buf);
        let ng = self.needs(a);
        self.push(v, Op::SliceRows(a, start), ng)
    }

    /// A single row of `a` as a `1 × cols` node.
    pub fn row(&mut self, a: NodeId, r: usize) -> NodeId {
        self.slice_rows(a, r, 1)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = Matrix::zeros(c, r);
        let src = &self.nodes[a.0].value;
        for i in 0..r {
            for j in 0..c {
                v.data_mut()[j * r + i] = src.get(i, j);
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::Transpose(a), ng)
    }

    /// Column means over rows → `1 × cols` (mean pooling, Algorithm 2 line 6).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = Matrix::zeros(1, self.nodes[a.0].value.cols());
        let src = &self.nodes[a.0].value;
        for i in 0..src.rows() {
            for (o, &x) in v.row_mut(0).iter_mut().zip(src.row(i)) {
                *o += x;
            }
        }
        v.scale_assign(1.0 / src.rows() as f64);
        let ng = self.needs(a);
        self.push(v, Op::MeanRows(a), ng)
    }

    /// Sum of all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s: f64 = self.nodes[a.0].value.data().iter().sum();
        let ng = self.needs(a);
        self.push(Matrix::row_vec(vec![s]), Op::SumAll(a), ng)
    }

    /// Row gather: output row `i` = `a`'s row `indices[i]` (embedding
    /// lookup; duplicates allowed).
    pub fn gather_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let mut buf = Vec::new();
        let src = &self.nodes[a.0].value;
        crate::kernels::gather_rows_into(src.data(), src.rows(), src.cols(), indices, &mut buf);
        let v = Matrix::from_vec(indices.len(), src.cols(), buf);
        let ng = self.needs(a);
        self.push(v, Op::GatherRows(a, indices.to_vec()), ng)
    }

    /// Inner product of two `1 × d` rows → `1 × 1` (Eq. 9's `c_j · p_i`).
    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let m = self.mul(a, b);
        self.sum_all(m)
    }

    // --------------------------------------------------------------- losses

    /// Mean binary cross-entropy over all elements, from logits
    /// (numerically stable log-sum-exp form). Targets are constant.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Matrix) -> NodeId {
        let x = &self.nodes[logits.0].value;
        assert_eq!(x.shape(), targets.shape(), "bce target shape");
        let n = x.len() as f64;
        let mut total = 0.0;
        for (&xi, &ti) in x.data().iter().zip(targets.data().iter()) {
            total += xi.max(0.0) - xi * ti + (1.0 + (-xi.abs()).exp()).ln();
        }
        let ng = self.needs(logits);
        self.push(Matrix::row_vec(vec![total / n]), Op::BceWithLogits(logits, targets), ng)
    }

    /// Mean softmax cross-entropy: row `i` of `logits` is scored against
    /// class `targets[i]`.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let x = &self.nodes[logits.0].value;
        assert_eq!(x.rows(), targets.len(), "sce target count");
        let mut total = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            let row = x.row(i);
            assert!(t < row.len(), "sce target out of range");
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln();
            total += lse - row[t];
        }
        let ng = self.needs(logits);
        self.push(
            Matrix::row_vec(vec![total / targets.len() as f64]),
            Op::SoftmaxCrossEntropy(logits, targets.to_vec()),
            ng,
        )
    }

    /// Mean absolute error against a constant target (Eq. 20).
    pub fn l1_loss(&mut self, pred: NodeId, target: Matrix) -> NodeId {
        let x = &self.nodes[pred.0].value;
        assert_eq!(x.shape(), target.shape(), "l1 target shape");
        let n = x.len() as f64;
        let total: f64 =
            x.data().iter().zip(target.data().iter()).map(|(&p, &t)| (p - t).abs()).sum();
        let ng = self.needs(pred);
        self.push(Matrix::row_vec(vec![total / n]), Op::L1Loss(pred, target), ng)
    }

    // ------------------------------------------------------------- backward

    /// Back-propagates from `loss` (must be `1 × 1`), accumulating into
    /// every bound [`Param`].
    ///
    /// # Panics
    /// Panics if `loss` is not scalar.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "loss must be scalar");
        self.nodes[loss.0].grad = Some(Matrix::row_vec(vec![1.0]));
        for i in (0..=loss.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            self.backprop_node(i);
        }
        for (node_idx, param) in &self.bindings {
            if let Some(g) = &self.nodes[*node_idx].grad {
                param.accumulate_grad(g);
            }
        }
        for (node_idx, param, ids) in &self.gathers {
            if let Some(g) = &self.nodes[*node_idx].grad {
                param.accumulate_grad_rows(ids, g);
            }
        }
    }

    fn grad_buf(&mut self, id: NodeId) -> &mut Matrix {
        let (r, c) = self.nodes[id.0].value.shape();
        self.nodes[id.0].grad.get_or_insert_with(|| Matrix::zeros(r, c))
    }

    fn add_grad(&mut self, id: NodeId, delta: &Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        self.grad_buf(id).add_assign(delta);
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&mut self, i: usize) {
        let g = self.nodes[i].grad.clone().expect("grad present");
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let av = self.nodes[a.0].value.clone();
                let bv = self.nodes[b.0].value.clone();
                if self.needs(a) {
                    let da = g.matmul(&bv.transpose());
                    self.add_grad(a, &da);
                }
                if self.needs(b) {
                    let db = av.transpose().matmul(&g);
                    self.add_grad(b, &db);
                }
            }
            Op::Add(a, b) => {
                self.add_grad(a, &g);
                self.add_grad(b, &g);
            }
            Op::AddRow(a, row) => {
                self.add_grad(a, &g);
                if self.needs(row) {
                    let mut dv = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &x) in dv.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    self.add_grad(row, &dv);
                }
            }
            Op::Mul(a, b) => {
                if self.needs(a) {
                    let bv = self.nodes[b.0].value.clone();
                    let da = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data().iter().zip(bv.data()).map(|(&x, &y)| x * y).collect(),
                    );
                    self.add_grad(a, &da);
                }
                if self.needs(b) {
                    let av = self.nodes[a.0].value.clone();
                    let db = Matrix::from_vec(
                        g.rows(),
                        g.cols(),
                        g.data().iter().zip(av.data()).map(|(&x, &y)| x * y).collect(),
                    );
                    self.add_grad(b, &db);
                }
            }
            Op::MulRow(a, row) => {
                let rowv = self.nodes[row.0].value.clone();
                if self.needs(a) {
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        for (x, &y) in da.row_mut(r).iter_mut().zip(rowv.row(0)) {
                            *x *= y;
                        }
                    }
                    self.add_grad(a, &da);
                }
                if self.needs(row) {
                    let av = self.nodes[a.0].value.clone();
                    let mut dv = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            dv.row_mut(0)[c] += g.get(r, c) * av.get(r, c);
                        }
                    }
                    self.add_grad(row, &dv);
                }
            }
            Op::Scale(a, c) => {
                let da = g.map(|x| c * x);
                self.add_grad(a, &da);
            }
            Op::AddScalar(a, _) => {
                self.add_grad(a, &g);
            }
            Op::Relu(a) => {
                let av = self.nodes[a.0].value.clone();
                let da = Matrix::from_vec(
                    g.rows(),
                    g.cols(),
                    g.data()
                        .iter()
                        .zip(av.data())
                        .map(|(&gx, &x)| if x > 0.0 { gx } else { 0.0 })
                        .collect(),
                );
                self.add_grad(a, &da);
            }
            Op::Sigmoid(a) => {
                let out = self.nodes[i].value.clone();
                let da = Matrix::from_vec(
                    g.rows(),
                    g.cols(),
                    g.data().iter().zip(out.data()).map(|(&gx, &s)| gx * s * (1.0 - s)).collect(),
                );
                self.add_grad(a, &da);
            }
            Op::Tanh(a) => {
                let out = self.nodes[i].value.clone();
                let da = Matrix::from_vec(
                    g.rows(),
                    g.cols(),
                    g.data().iter().zip(out.data()).map(|(&gx, &t)| gx * (1.0 - t * t)).collect(),
                );
                self.add_grad(a, &da);
            }
            Op::SoftmaxRows(a) => {
                let s = self.nodes[i].value.clone();
                let mut da = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let dot: f64 = g.row(r).iter().zip(s.row(r)).map(|(&x, &y)| x * y).sum();
                    for c in 0..g.cols() {
                        da.set(r, c, s.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                self.add_grad(a, &da);
            }
            Op::LayerNormRows(a) => {
                // y = (x - μ) / sqrt(σ² + ε);
                // dx = (dy − mean(dy) − y · mean(dy ∘ y)) / sqrt(σ² + ε)
                let av = self.nodes[a.0].value.clone();
                let y = self.nodes[i].value.clone();
                let cols = av.cols() as f64;
                let mut da = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let mean = av.row(r).iter().sum::<f64>() / cols;
                    let var = av.row(r).iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / cols;
                    let denom = (var + 1e-5).sqrt();
                    let g_mean: f64 = g.row(r).iter().sum::<f64>() / cols;
                    let gy_mean: f64 =
                        g.row(r).iter().zip(y.row(r)).map(|(&gx, &yx)| gx * yx).sum::<f64>() / cols;
                    for c in 0..g.cols() {
                        da.set(r, c, (g.get(r, c) - g_mean - y.get(r, c) * gy_mean) / denom);
                    }
                }
                self.add_grad(a, &da);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for p in parts {
                    let pc = self.nodes[p.0].value.cols();
                    if self.needs(p) {
                        let mut dp = Matrix::zeros(g.rows(), pc);
                        for r in 0..g.rows() {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + pc]);
                        }
                        self.add_grad(p, &dp);
                    }
                    off += pc;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for p in parts {
                    let pr = self.nodes[p.0].value.rows();
                    if self.needs(p) {
                        let mut dp = Matrix::zeros(pr, g.cols());
                        for r in 0..pr {
                            dp.row_mut(r).copy_from_slice(g.row(off + r));
                        }
                        self.add_grad(p, &dp);
                    }
                    off += pr;
                }
            }
            Op::SliceRows(a, start) => {
                if self.needs(a) {
                    let (pr, pc) = self.nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(pr, pc);
                    for r in 0..g.rows() {
                        da.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    self.add_grad(a, &da);
                }
            }
            Op::Transpose(a) => {
                let da = g.transpose();
                self.add_grad(a, &da);
            }
            Op::MeanRows(a) => {
                if self.needs(a) {
                    let rows = self.nodes[a.0].value.rows();
                    let scale = 1.0 / rows as f64;
                    let mut da = Matrix::zeros(rows, g.cols());
                    for r in 0..rows {
                        for (o, &x) in da.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = x * scale;
                        }
                    }
                    self.add_grad(a, &da);
                }
            }
            Op::SumAll(a) => {
                if self.needs(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let da = Matrix::full(r, c, g.get(0, 0));
                    self.add_grad(a, &da);
                }
            }
            Op::GatherRows(a, indices) => {
                if self.needs(a) {
                    let (pr, pc) = self.nodes[a.0].value.shape();
                    let mut da = Matrix::zeros(pr, pc);
                    for (r, &ix) in indices.iter().enumerate() {
                        for (o, &x) in da.row_mut(ix).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    self.add_grad(a, &da);
                }
            }
            Op::BceWithLogits(logits, targets) => {
                if self.needs(logits) {
                    let x = self.nodes[logits.0].value.clone();
                    let n = x.len() as f64;
                    let scale = g.get(0, 0) / n;
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(targets.data())
                            .map(|(&xi, &ti)| scale * (1.0 / (1.0 + (-xi).exp()) - ti))
                            .collect(),
                    );
                    self.add_grad(logits, &da);
                }
            }
            Op::SoftmaxCrossEntropy(logits, targets) => {
                if self.needs(logits) {
                    let x = self.nodes[logits.0].value.clone();
                    let scale = g.get(0, 0) / targets.len() as f64;
                    let mut da = Matrix::zeros(x.rows(), x.cols());
                    for (r, &t) in targets.iter().enumerate() {
                        let row = x.row(r);
                        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let sum: f64 = row.iter().map(|&v| (v - max).exp()).sum();
                        for c in 0..x.cols() {
                            let p = (x.get(r, c) - max).exp() / sum;
                            let delta = if c == t { 1.0 } else { 0.0 };
                            da.set(r, c, scale * (p - delta));
                        }
                    }
                    self.add_grad(logits, &da);
                }
            }
            Op::L1Loss(pred, target) => {
                if self.needs(pred) {
                    let x = self.nodes[pred.0].value.clone();
                    let n = x.len() as f64;
                    let scale = g.get(0, 0) / n;
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.data()
                            .iter()
                            .zip(target.data())
                            .map(|(&p, &t)| scale * (p - t).signum())
                            .collect(),
                    );
                    self.add_grad(pred, &da);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_tape_but_keeps_capacity() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::row_vec(vec![1.0, 2.0]));
        let b = g.mul(a, a);
        let loss = g.sum_all(b);
        g.backward(loss);
        let cap = g.nodes.capacity();
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.nodes.capacity(), cap, "reset must keep the arena");
        // The tape is fully reusable after reset.
        let a2 = g.leaf(Matrix::row_vec(vec![3.0]));
        let sq = g.mul(a2, a2);
        let loss2 = g.sum_all(sq);
        g.backward(loss2);
        assert_eq!(g.grad(a2).data(), &[6.0]);
    }

    #[test]
    fn forward_values_compose() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.input(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 3.0, 4.0]);
        let d = g.scale(c, 2.0);
        let e = g.add(c, d);
        assert_eq!(g.value(e).data(), &[3.0, 6.0, 9.0, 12.0]);
        let s = g.sum_all(e);
        assert_eq!(g.value(s).get(0, 0), 30.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f64 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Softmax is shift-invariant.
        let b = g.add_scalar(a, 100.0);
        let s2 = g.softmax_rows(b);
        for (x, y) in g.value(s).data().iter().zip(g.value(s2).data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn layer_norm_standardises_rows() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = g.layer_norm_rows(a);
        let row = g.value(y).row(0);
        let mean: f64 = row.iter().sum::<f64>() / 4.0;
        let var: f64 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn simple_gradient_through_matmul() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = g.leaf(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert_eq!(g.grad(a).data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.grad(b).data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn param_grads_flush() {
        let p = Param::from_matrix(Matrix::row_vec(vec![2.0, 3.0]));
        let mut g = Graph::new();
        let w = g.param(&p);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.backward(loss);
        // d/dw sum(w²) = 2w.
        assert_eq!(p.grad().data(), &[4.0, 6.0]);
    }

    #[test]
    fn constant_inputs_get_no_grad() {
        let mut g = Graph::new();
        let a = g.input(Matrix::row_vec(vec![1.0]));
        let b = g.leaf(Matrix::row_vec(vec![2.0]));
        let c = g.mul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        assert_eq!(g.grad(a).data(), &[0.0]); // not tracked
        assert_eq!(g.grad(b).data(), &[1.0]);
    }

    #[test]
    fn bce_loss_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::row_vec(vec![0.0, 2.0]));
        let targets = Matrix::row_vec(vec![1.0, 0.0]);
        let loss = g.bce_with_logits(logits, targets);
        // manual: -(ln σ(0)) and -(ln(1-σ(2)))
        let want = (-(0.5f64.ln()) + -((1.0 - 1.0 / (1.0 + (-2.0f64).exp())).ln())) / 2.0;
        assert!((g.value(loss).get(0, 0) - want).abs() < 1e-9);
    }

    #[test]
    fn sce_loss_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let loss = g.softmax_cross_entropy(logits, &[2]);
        let z: f64 = (1.0f64.exp() + 2.0f64.exp() + 3.0f64.exp()).ln();
        assert!((g.value(loss).get(0, 0) - (z - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn embed_param_matches_param_gather() {
        // Same values and same flushed gradients as param() + gather_rows().
        let table = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ids = [1usize, 1, 0];

        let p_ref = Param::from_matrix(table.clone());
        let mut g1 = Graph::new();
        let w = g1.param(&p_ref);
        let picked = g1.gather_rows(w, &ids);
        let sq = g1.mul(picked, picked);
        let loss = g1.sum_all(sq);
        g1.backward(loss);

        let p_new = Param::from_matrix(table);
        let mut g2 = Graph::new();
        let picked2 = g2.embed_param(&p_new, &ids);
        let sq2 = g2.mul(picked2, picked2);
        let loss2 = g2.sum_all(sq2);
        g2.backward(loss2);

        assert_eq!(g1.value(picked).data(), g2.value(picked2).data());
        assert_eq!(g1.value(loss).data(), g2.value(loss2).data());
        assert_eq!(p_ref.grad().data(), p_new.grad().data());
    }

    #[test]
    fn param_rebind_is_memoised() {
        let p = Param::from_matrix(Matrix::row_vec(vec![2.0]));
        let mut g = Graph::new();
        let a = g.param(&p);
        let b = g.param(&p);
        assert_eq!(a, b, "same param must bind to one node");
        let m = g.mul(a, b);
        let loss = g.sum_all(m);
        g.backward(loss);
        // d/dw w² = 2w, flushed exactly once.
        assert_eq!(p.grad().data(), &[4.0]);
    }

    #[test]
    fn gather_rows_duplicates_accumulate() {
        let mut g = Graph::new();
        let table = g.leaf(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let picked = g.gather_rows(table, &[1, 1, 0]);
        assert_eq!(g.value(picked).row(0), &[3.0, 4.0]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        // Row 1 picked twice → grad 2; row 0 once → 1; row 2 never → 0.
        assert_eq!(g.grad(table).data(), &[1.0, 1.0, 2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn dot_is_inner_product() {
        let mut g = Graph::new();
        let a = g.input(Matrix::row_vec(vec![1.0, 2.0, 3.0]));
        let b = g.input(Matrix::row_vec(vec![4.0, 5.0, 6.0]));
        let d = g.dot(a, b);
        assert_eq!(g.value(d).get(0, 0), 32.0);
    }
}
