//! Finite-difference validation of every autograd adjoint.
//!
//! For each op (and for composed modules) we compare the analytic gradient
//! of a scalar loss w.r.t. a leaf input against central differences. With
//! `f64` storage and ε = 1e-5 the agreement is tight (relative error well
//! below 1e-5), so these tests pin down the backward pass exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, NodeId};
use crate::layers::{GruCell, LayerNorm, Mlp, MultiHeadAttention, TransformerLayer};
use crate::matrix::Matrix;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-5;

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// Checks d loss / d input against central differences for a scalar-valued
/// computation `f`.
fn check(input: Matrix, f: impl Fn(&mut Graph, NodeId) -> NodeId) {
    // Analytic gradient.
    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let loss = f(&mut g, x);
    assert_eq!(g.value(loss).shape(), (1, 1), "loss must be scalar");
    g.backward(loss);
    let analytic = g.grad(x);

    // Numeric gradient.
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += EPS;
        let mut minus = input.clone();
        minus.data_mut()[i] -= EPS;
        let eval = |m: Matrix| -> f64 {
            let mut g = Graph::new();
            let x = g.leaf(m);
            let loss = f(&mut g, x);
            g.value(loss).get(0, 0)
        };
        let numeric = (eval(plus) - eval(minus)) / (2.0 * EPS);
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        assert!(
            (a - numeric).abs() / denom < TOL,
            "element {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn grad_matmul_chain() {
    let mut rng = StdRng::seed_from_u64(1);
    let w = random_matrix(3, 2, &mut rng);
    check(random_matrix(2, 3, &mut rng), move |g, x| {
        let wn = g.input(w.clone());
        let y = g.matmul(x, wn);
        g.sum_all(y)
    });
}

#[test]
fn grad_matmul_right_operand() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_matrix(2, 3, &mut rng);
    check(random_matrix(3, 2, &mut rng), move |g, x| {
        let an = g.input(a.clone());
        let y = g.matmul(an, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_add_and_scale() {
    let mut rng = StdRng::seed_from_u64(3);
    check(random_matrix(2, 4, &mut rng), |g, x| {
        let y = g.scale(x, 2.5);
        let z = g.add(x, y);
        let w = g.add_scalar(z, -0.3);
        let sq = g.mul(w, w);
        g.sum_all(sq)
    });
}

#[test]
fn grad_add_row_broadcast_on_row() {
    let mut rng = StdRng::seed_from_u64(4);
    let base = random_matrix(3, 4, &mut rng);
    check(random_matrix(1, 4, &mut rng), move |g, x| {
        let b = g.input(base.clone());
        let y = g.add_row(b, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_mul_row_broadcast_both_sides() {
    let mut rng = StdRng::seed_from_u64(5);
    let row = random_matrix(1, 4, &mut rng);
    check(random_matrix(3, 4, &mut rng), move |g, x| {
        let r = g.leaf(row.clone());
        let y = g.mul_row(x, r);
        g.sum_all(y)
    });
}

#[test]
fn grad_relu_away_from_kink() {
    // Inputs bounded away from zero so the subgradient is unambiguous.
    let m = Matrix::from_vec(2, 3, vec![0.5, -0.7, 1.2, -0.3, 0.9, -1.5]);
    check(m, |g, x| {
        let y = g.relu(x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_sigmoid_tanh() {
    let mut rng = StdRng::seed_from_u64(6);
    check(random_matrix(2, 3, &mut rng), |g, x| {
        let s = g.sigmoid(x);
        let t = g.tanh(s);
        g.sum_all(t)
    });
}

#[test]
fn grad_softmax_weighted() {
    let mut rng = StdRng::seed_from_u64(7);
    let w = random_matrix(2, 5, &mut rng);
    check(random_matrix(2, 5, &mut rng), move |g, x| {
        let s = g.softmax_rows(x);
        let wn = g.input(w.clone());
        let y = g.mul(s, wn);
        g.sum_all(y)
    });
}

#[test]
fn grad_layer_norm() {
    let mut rng = StdRng::seed_from_u64(8);
    let w = random_matrix(2, 6, &mut rng);
    check(random_matrix(2, 6, &mut rng), move |g, x| {
        let y = g.layer_norm_rows(x);
        let wn = g.input(w.clone());
        let z = g.mul(y, wn);
        g.sum_all(z)
    });
}

#[test]
fn grad_concat_cols_and_rows() {
    let mut rng = StdRng::seed_from_u64(9);
    let other = random_matrix(2, 3, &mut rng);
    check(random_matrix(2, 3, &mut rng), move |g, x| {
        let o = g.input(other.clone());
        let cc = g.concat_cols(&[x, o, x]);
        let cr = g.concat_rows(&[cc, cc]);
        let sq = g.mul(cr, cr);
        g.sum_all(sq)
    });
}

#[test]
fn grad_slice_and_transpose() {
    let mut rng = StdRng::seed_from_u64(10);
    check(random_matrix(4, 3, &mut rng), |g, x| {
        let s = g.slice_rows(x, 1, 2);
        let t = g.transpose(s);
        let sq = g.mul(t, t);
        g.sum_all(sq)
    });
}

#[test]
fn grad_mean_rows() {
    let mut rng = StdRng::seed_from_u64(11);
    check(random_matrix(4, 3, &mut rng), |g, x| {
        let m = g.mean_rows(x);
        let sq = g.mul(m, m);
        g.sum_all(sq)
    });
}

#[test]
fn grad_gather_rows_with_duplicates() {
    let mut rng = StdRng::seed_from_u64(12);
    check(random_matrix(4, 3, &mut rng), |g, x| {
        let p = g.gather_rows(x, &[2, 0, 2, 3]);
        let sq = g.mul(p, p);
        g.sum_all(sq)
    });
}

#[test]
fn grad_bce_with_logits() {
    let mut rng = StdRng::seed_from_u64(13);
    let targets = Matrix::from_vec(1, 6, vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    check(random_matrix(1, 6, &mut rng), move |g, x| g.bce_with_logits(x, targets.clone()));
}

#[test]
fn grad_softmax_cross_entropy() {
    let mut rng = StdRng::seed_from_u64(14);
    check(random_matrix(3, 5, &mut rng), |g, x| g.softmax_cross_entropy(x, &[0, 4, 2]));
}

#[test]
fn grad_l1_away_from_kink() {
    // Targets chosen far from inputs so |·| has no kink at the sample.
    let target = Matrix::from_vec(1, 4, vec![5.0, -5.0, 5.0, -5.0]);
    let input = Matrix::from_vec(1, 4, vec![0.1, 0.2, -0.3, 0.4]);
    check(input, move |g, x| g.l1_loss(x, target.clone()));
}

#[test]
fn grad_dot_product() {
    let mut rng = StdRng::seed_from_u64(15);
    let other = random_matrix(1, 5, &mut rng);
    check(random_matrix(1, 5, &mut rng), move |g, x| {
        let o = g.input(other.clone());
        let d = g.dot(x, o);
        let s = g.sigmoid(d);
        g.sum_all(s)
    });
}

#[test]
fn grad_through_mlp_module() {
    let mut rng = StdRng::seed_from_u64(16);
    let mlp = Mlp::new(4, 8, 2, &mut rng);
    check(random_matrix(3, 4, &mut rng), move |g, x| {
        let y = mlp.forward(g, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_through_layer_norm_module() {
    let mut rng = StdRng::seed_from_u64(17);
    let ln = LayerNorm::new(5);
    check(random_matrix(2, 5, &mut rng), move |g, x| {
        let y = ln.forward(g, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_through_attention() {
    let mut rng = StdRng::seed_from_u64(18);
    let attn = MultiHeadAttention::new(6, 2, &mut rng);
    check(random_matrix(3, 6, &mut rng), move |g, x| {
        let y = attn.forward(g, x, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_through_transformer_layer() {
    let mut rng = StdRng::seed_from_u64(19);
    let layer = TransformerLayer::new(6, 2, 12, &mut rng);
    check(random_matrix(3, 6, &mut rng), move |g, x| {
        let y = layer.forward(g, x);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_through_gru_step() {
    let mut rng = StdRng::seed_from_u64(20);
    let gru = GruCell::new(4, 5, &mut rng);
    let h0 = random_matrix(1, 5, &mut rng);
    check(random_matrix(1, 4, &mut rng), move |g, x| {
        let h = g.input(h0.clone());
        let h1 = gru.step(g, x, h);
        let h2 = gru.step(g, x, h1);
        let sq = g.mul(h2, h2);
        g.sum_all(sq)
    });
}

#[test]
fn grad_param_matches_leaf_grad() {
    // A Param bound twice in one graph accumulates both contributions.
    use crate::param::Param;
    let value = Matrix::row_vec(vec![0.4, -0.2]);
    let p = Param::from_matrix(value.clone());
    let mut g = Graph::new();
    let w1 = g.param(&p);
    let w2 = g.param(&p);
    let prod = g.mul(w1, w2); // = w ∘ w
    let loss = g.sum_all(prod);
    g.backward(loss);
    // d/dw sum(w²) = 2w, split across two bindings.
    let grad = p.grad();
    assert!((grad.get(0, 0) - 0.8).abs() < 1e-12);
    assert!((grad.get(0, 1) + 0.4).abs() < 1e-12);
}
