//! Dense row-major matrices — the only tensor shape in this stack.

use std::fmt;

/// A dense row-major `f64` matrix.
///
/// Row vectors are `1 × d` matrices; sequences are `len × d`. Invariant:
/// `data.len() == rows * cols`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with a constant.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { rows, cols, data }
    }

    /// Builds a `1 × d` row vector.
    #[must_use]
    pub fn row_vec(data: Vec<f64>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths or the slice is empty.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat buffer.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// Naive i-k-j loop ordering (cache-friendly on row-major data); the
    /// models here are small enough that this is never the bottleneck.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhs` written into `out`, which must be a
    /// zeroed `self.rows × rhs.cols` matrix (e.g. from a recycled buffer).
    /// The allocation-free path of the forward-only inference workspace.
    ///
    /// # Panics
    /// Panics on inner- or output-dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into output shape");
        if rhs.cols == 1 {
            // Matrix–vector products (every per-candidate logit column in
            // MMA) go through the register-accumulating kernel; it replays
            // this loop's exact zero-skip add order, so results are
            // bitwise-identical.
            crate::kernels::matvec_skip_zero(&self.data, &rhs.data, &mut out.data);
            return;
        }
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise map into a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let id = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn transpose_consistent_with_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_eq!(left, right);
    }

    #[test]
    fn add_scale_map() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        let c = a.map(|x| x - 3.0);
        assert_eq!(c.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }
}
