//! Neural modules used by MMA and TRMMA: linear/MLP blocks, layer norm,
//! multi-head self-attention, transformer encoder layers (Eq. 4–6 of the
//! paper) and a GRU cell (the TRMMA decoder).

use rand::rngs::StdRng;

use crate::graph::{Graph, NodeId};
use crate::matrix::Matrix;
use crate::param::{Init, Param};

/// A fully connected layer `x · W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Param,
    b: Option<Param>,
}

impl Linear {
    /// Xavier-initialised layer with bias.
    #[must_use]
    pub fn new(d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Param::new(d_in, d_out, Init::Xavier, rng),
            b: Some(Param::new(1, d_out, Init::Zeros, rng)),
        }
    }

    /// Xavier-initialised layer without bias.
    #[must_use]
    pub fn new_no_bias(d_in: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Self { w: Param::new(d_in, d_out, Init::Xavier, rng), b: None }
    }

    /// Wraps a pre-initialised weight matrix (e.g. Node2Vec embeddings for
    /// MMA's `W_C`, Eq. 1) with no bias.
    #[must_use]
    pub fn from_weights(w: Matrix) -> Self {
        Self { w: Param::from_matrix(w), b: None }
    }

    /// The weight matrix parameter.
    #[must_use]
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// Applies the layer to a `rows × d_in` node.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.w);
        let y = g.matmul(x, w);
        match &self.b {
            Some(b) => {
                let bn = g.param(b);
                g.add_row(y, bn)
            }
            None => y,
        }
    }

    /// Embedding lookup: rows of `W` selected by id — equivalent to one-hot
    /// times `W` (Eq. 1) but O(k·d) instead of O(n·d), gathering straight
    /// out of the parameter so the full table never hits the tape.
    pub fn embed(&self, g: &mut Graph, ids: &[usize]) -> NodeId {
        g.embed_param(&self.w, ids)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        match &self.b {
            Some(b) => vec![self.w.clone(), b.clone()],
            None => vec![self.w.clone()],
        }
    }
}

/// Two-layer perceptron with ReLU: `ReLU(x·W1 + b1)·W2 + b2` (Eq. 2, 5, 7,
/// 15, 18 all instantiate this shape).
#[derive(Debug, Clone)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// Builds an MLP `d_in → hidden → d_out`.
    #[must_use]
    pub fn new(d_in: usize, hidden: usize, d_out: usize, rng: &mut StdRng) -> Self {
        Self { l1: Linear::new(d_in, hidden, rng), l2: Linear::new(hidden, d_out, rng) }
    }

    /// Applies the MLP.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let h = self.l1.forward(g, x);
        let h = g.relu(h);
        self.l2.forward(g, h)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }
}

/// Layer normalisation with learnable gain/bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
}

impl LayerNorm {
    /// Identity-initialised layer norm over `dim` features.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            gain: Param::from_matrix(Matrix::full(1, dim, 1.0)),
            bias: Param::from_matrix(Matrix::zeros(1, dim)),
        }
    }

    /// Applies row-wise normalisation then the affine transform.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let normed = g.layer_norm_rows(x);
        let gain = g.param(&self.gain);
        let scaled = g.mul_row(normed, gain);
        let bias = g.param(&self.bias);
        g.add_row(scaled, bias)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        vec![self.gain.clone(), self.bias.clone()]
    }
}

/// Multi-head scaled dot-product self-attention (Eq. 4).
///
/// Heads are realised as independent `d → d/h` projections; outputs are
/// concatenated and mixed by `W_O`. With sequence lengths ≤ a few hundred
/// this is exactly as fast as the batched formulation and much simpler.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Vec<Linear>,
    wk: Vec<Linear>,
    wv: Vec<Linear>,
    wo: Linear,
    d_head: usize,
}

impl MultiHeadAttention {
    /// Builds `heads`-head attention over `dim` features.
    ///
    /// # Panics
    /// Panics unless `dim % heads == 0`.
    #[must_use]
    pub fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide into heads");
        let d_head = dim / heads;
        let proj = |rng: &mut StdRng| -> Vec<Linear> {
            (0..heads).map(|_| Linear::new_no_bias(dim, d_head, rng)).collect()
        };
        Self {
            wq: proj(rng),
            wk: proj(rng),
            wv: proj(rng),
            wo: Linear::new_no_bias(dim, dim, rng),
            d_head,
        }
    }

    /// Attention with separate query/key-value sources (`q`: `Lq × d`,
    /// `kv`: `Lkv × d`); self-attention passes the same node twice.
    pub fn forward(&self, g: &mut Graph, q: NodeId, kv: NodeId) -> NodeId {
        let scale = 1.0 / (self.d_head as f64).sqrt();
        let mut heads = Vec::with_capacity(self.wq.len());
        for h in 0..self.wq.len() {
            let qh = self.wq[h].forward(g, q);
            let kh = self.wk[h].forward(g, kv);
            let vh = self.wv[h].forward(g, kv);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let scaled = g.scale(scores, scale);
            let attn = g.softmax_rows(scaled);
            heads.push(g.matmul(attn, vh));
        }
        let cat = g.concat_cols(&heads);
        self.wo.forward(g, cat)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        for l in self.wq.iter().chain(&self.wk).chain(&self.wv) {
            p.extend(l.params());
        }
        p.extend(self.wo.params());
        p
    }
}

/// One transformer encoder layer (Eq. 6): post-norm residual attention and
/// feed-forward sublayers.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: Mlp,
    ln2: LayerNorm,
}

impl TransformerLayer {
    /// Builds a layer over `dim` features with `heads` heads and an
    /// `ffn_dim` feed-forward hidden size.
    #[must_use]
    pub fn new(dim: usize, heads: usize, ffn_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln1: LayerNorm::new(dim),
            ffn: Mlp::new(dim, ffn_dim, dim, rng),
            ln2: LayerNorm::new(dim),
        }
    }

    /// Applies the layer to an `L × dim` sequence.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let a = self.attn.forward(g, x, x);
        let res1 = g.add(x, a);
        let x1 = self.ln1.forward(g, res1);
        let f = self.ffn.forward(g, x1);
        let res2 = g.add(x1, f);
        self.ln2.forward(g, res2)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        let mut p = self.attn.params();
        p.extend(self.ln1.params());
        p.extend(self.ffn.params());
        p.extend(self.ln2.params());
        p
    }
}

/// A stack of [`TransformerLayer`]s (the `Trans(·)` of Eq. 3 and the two
/// encoders of the DualFormer, Eq. 11–12).
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    layers: Vec<TransformerLayer>,
    /// Whether to add sinusoidal positional encodings before the first layer.
    use_pe: bool,
    dim: usize,
}

impl TransformerEncoder {
    /// Builds `n_layers` stacked layers over `dim` features.
    #[must_use]
    pub fn new(
        dim: usize,
        heads: usize,
        ffn_dim: usize,
        n_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            layers: (0..n_layers)
                .map(|_| TransformerLayer::new(dim, heads, ffn_dim, rng))
                .collect(),
            use_pe: true,
            dim,
        }
    }

    /// Disables positional encodings (ablation hook).
    #[must_use]
    pub fn without_positional_encoding(mut self) -> Self {
        self.use_pe = false;
        self
    }

    /// Applies the encoder stack to an `L × dim` sequence.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = if self.use_pe {
            let len = g.value(x).rows();
            let pe = g.input(positional_encoding(len, self.dim));
            g.add(x, pe)
        } else {
            x
        };
        for layer in &self.layers {
            h = layer.forward(g, h);
        }
        h
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(TransformerLayer::params).collect()
    }
}

/// Sinusoidal positional encodings (`len × dim`).
#[must_use]
pub fn positional_encoding(len: usize, dim: usize) -> Matrix {
    let mut pe = Matrix::zeros(len, dim);
    for pos in 0..len {
        for i in 0..dim {
            let angle = pos as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / dim as f64);
            pe.set(pos, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

/// A gated recurrent unit cell (Cho et al., 2014) — the sequential decoder
/// of TRMMA (Fig. 4).
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
}

impl GruCell {
    /// Builds a cell with input size `d_in` and hidden size `d_h`.
    #[must_use]
    pub fn new(d_in: usize, d_h: usize, rng: &mut StdRng) -> Self {
        Self {
            wz: Linear::new(d_in, d_h, rng),
            uz: Linear::new_no_bias(d_h, d_h, rng),
            wr: Linear::new(d_in, d_h, rng),
            ur: Linear::new_no_bias(d_h, d_h, rng),
            wh: Linear::new(d_in, d_h, rng),
            uh: Linear::new_no_bias(d_h, d_h, rng),
        }
    }

    /// One step: `(x: 1 × d_in, h: 1 × d_h) → h': 1 × d_h`.
    pub fn step(&self, g: &mut Graph, x: NodeId, h: NodeId) -> NodeId {
        // z = σ(x·Wz + h·Uz + bz)
        let zx = self.wz.forward(g, x);
        let zh = self.uz.forward(g, h);
        let z_pre = g.add(zx, zh);
        let z = g.sigmoid(z_pre);
        // r = σ(x·Wr + h·Ur + br)
        let rx = self.wr.forward(g, x);
        let rh = self.ur.forward(g, h);
        let r_pre = g.add(rx, rh);
        let r = g.sigmoid(r_pre);
        // h̃ = tanh(x·Wh + (r ∘ h)·Uh + bh)
        let hx = self.wh.forward(g, x);
        let rh2 = g.mul(r, h);
        let hh = self.uh.forward(g, rh2);
        let h_pre = g.add(hx, hh);
        let h_tilde = g.tanh(h_pre);
        // h' = (1 − z) ∘ h + z ∘ h̃
        let neg_z = g.scale(z, -1.0);
        let one_minus_z = g.add_scalar(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        let update = g.mul(z, h_tilde);
        g.add(keep, update)
    }

    /// The learnable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Param> {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_shapes() {
        let mut r = rng();
        let lin = Linear::new(4, 3, &mut r);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(5, 4));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 3));
        assert_eq!(lin.params().len(), 2);
    }

    #[test]
    fn embed_matches_one_hot_matmul() {
        let mut r = rng();
        let lin = Linear::new_no_bias(4, 3, &mut r);
        let mut g = Graph::new();
        // one-hot for id 2
        let oh = g.input(Matrix::from_vec(1, 4, vec![0.0, 0.0, 1.0, 0.0]));
        let w = g.param(lin.weight());
        let via_matmul = g.matmul(oh, w);
        let via_embed = lin.embed(&mut g, &[2]);
        assert_eq!(g.value(via_matmul).data(), g.value(via_embed).data());
    }

    #[test]
    fn mlp_shapes_and_rectification() {
        let mut r = rng();
        let mlp = Mlp::new(2, 8, 1, &mut r);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(3, 2, vec![1.0, 1.0, -0.5, 2.0, 0.0, 0.0]));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (3, 1));
        assert_eq!(mlp.params().len(), 4);
        // Opposite inputs do not produce opposite outputs (ReLU breaks odd
        // symmetry), unlike a purely linear map.
        let xp = g.input(Matrix::row_vec(vec![0.7, -0.4]));
        let xm = g.input(Matrix::row_vec(vec![-0.7, 0.4]));
        let yp = mlp.forward(&mut g, xp);
        let ym = mlp.forward(&mut g, xm);
        let sum = g.value(yp).get(0, 0) + g.value(ym).get(0, 0);
        assert!(sum.abs() > 1e-9, "ReLU MLP should not be odd-symmetric");
    }

    #[test]
    fn layer_norm_output_standardised_before_affine() {
        let ln = LayerNorm::new(6);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(
            2,
            6,
            vec![1.0, 5.0, 3.0, 2.0, 8.0, 0.0, -1.0, -2.0, 4.0, 4.0, 1.0, 0.5],
        ));
        let y = ln.forward(&mut g, x);
        // Identity affine at init → each row standardised.
        for row in 0..2 {
            let v = g.value(y).row(row);
            let mean: f64 = v.iter().sum::<f64>() / 6.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn attention_rows_are_convex_mixes() {
        let mut r = rng();
        let attn = MultiHeadAttention::new(8, 2, &mut r);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(3, 8, (0..24).map(|i| (i as f64) / 10.0).collect()));
        let y = attn.forward(&mut g, x, x);
        assert_eq!(g.value(y).shape(), (3, 8));
    }

    #[test]
    fn cross_attention_shapes() {
        let mut r = rng();
        let attn = MultiHeadAttention::new(8, 2, &mut r);
        let mut g = Graph::new();
        let q = g.input(Matrix::zeros(5, 8));
        let kv = g.input(Matrix::zeros(3, 8));
        let y = attn.forward(&mut g, q, kv);
        assert_eq!(g.value(y).shape(), (5, 8));
    }

    #[test]
    fn transformer_encoder_preserves_shape() {
        let mut r = rng();
        let enc = TransformerEncoder::new(8, 2, 16, 2, &mut r);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(4, 8));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (4, 8));
        assert!(!enc.params().is_empty());
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let pe = positional_encoding(10, 8);
        assert_ne!(pe.row(0), pe.row(1));
        // Values bounded in [-1, 1].
        assert!(pe.data().iter().all(|x| x.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn gru_step_shapes_and_gating() {
        let mut r = rng();
        let gru = GruCell::new(4, 6, &mut r);
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vec(vec![0.1, -0.2, 0.3, 0.0]));
        let h0 = g.input(Matrix::zeros(1, 6));
        let h1 = gru.step(&mut g, x, h0);
        assert_eq!(g.value(h1).shape(), (1, 6));
        // Hidden state stays bounded: it is a convex mix of h (0) and tanh.
        assert!(g.value(h1).data().iter().all(|v| v.abs() < 1.0));
        let h2 = gru.step(&mut g, x, h1);
        assert_ne!(g.value(h1).data(), g.value(h2).data());
    }

    #[test]
    fn gru_param_count() {
        let mut r = rng();
        let gru = GruCell::new(4, 6, &mut r);
        // 3 input Linears with bias (2 params each) + 3 hidden without (1).
        assert_eq!(gru.params().len(), 9);
    }
}
