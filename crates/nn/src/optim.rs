//! First-order optimisers over [`Param`] collections.

use crate::param::Param;

/// Adam (Kingma & Ba) with bias correction — the de-facto optimiser for the
/// paper's transformer models (learning rate 1e-3 in §VI-A).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    /// Optional global-norm gradient clip.
    clip_norm: Option<f64>,
}

impl Adam {
    /// Creates an Adam optimiser over `params`.
    #[must_use]
    pub fn new(params: Vec<Param>, lr: f64) -> Self {
        Self { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, clip_norm: Some(5.0) }
    }

    /// Overrides the gradient-clipping threshold (`None` disables).
    #[must_use]
    pub fn with_clip(mut self, clip: Option<f64>) -> Self {
        self.clip_norm = clip;
        self
    }

    /// Number of managed parameters tensors.
    #[must_use]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Clears accumulated gradients on every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one update step from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let scale = self.clip_scale();
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let mut inner = p.write();
            let inner = &mut *inner;
            for i in 0..inner.value.len() {
                let g = inner.grad.data()[i] * scale;
                let m = self.beta1 * inner.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * inner.v.data()[i] + (1.0 - self.beta2) * g * g;
                inner.m.data_mut()[i] = m;
                inner.v.data_mut()[i] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                inner.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn clip_scale(&self) -> f64 {
        let Some(limit) = self.clip_norm else { return 1.0 };
        let total_sq: f64 = self
            .params
            .iter()
            .map(|p| {
                let g = p.read();
                g.grad.data().iter().map(|x| x * x).sum::<f64>()
            })
            .sum();
        let norm = total_sq.sqrt();
        if norm > limit {
            limit / norm
        } else {
            1.0
        }
    }
}

impl Adam {
    /// Overrides the learning rate (used by [`LrSchedule`]).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// The current learning rate.
    #[must_use]
    pub fn lr(&self) -> f64 {
        self.lr
    }
}

/// Linear-warmup + exponential-decay learning-rate schedule.
///
/// `lr(step) = base · min(step / warmup, 1) · decay^(epoch)` — the standard
/// recipe for small-transformer training; drive it manually with
/// [`LrSchedule::lr_at`] and [`Adam::set_lr`].
#[derive(Debug, Clone)]
pub struct LrSchedule {
    base: f64,
    warmup_steps: usize,
    decay_per_epoch: f64,
}

impl LrSchedule {
    /// Creates a schedule.
    #[must_use]
    pub fn new(base: f64, warmup_steps: usize, decay_per_epoch: f64) -> Self {
        Self { base, warmup_steps, decay_per_epoch }
    }

    /// The learning rate at a given optimiser step / epoch.
    #[must_use]
    pub fn lr_at(&self, step: usize, epoch: usize) -> f64 {
        let warm = if self.warmup_steps == 0 {
            1.0
        } else {
            ((step + 1) as f64 / self.warmup_steps as f64).min(1.0)
        };
        self.base * warm * self.decay_per_epoch.powi(epoch as i32)
    }
}

/// Plain stochastic gradient descent (used by Node2Vec and as a baseline in
/// optimiser tests).
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: f64,
}

impl Sgd {
    /// Creates an SGD optimiser over `params`.
    #[must_use]
    pub fn new(params: Vec<Param>, lr: f64) -> Self {
        Self { params, lr }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one descent step.
    pub fn step(&self) {
        for p in &self.params {
            let mut inner = p.write();
            let inner = &mut *inner;
            for i in 0..inner.value.len() {
                inner.value.data_mut()[i] -= self.lr * inner.grad.data()[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::matrix::Matrix;

    /// Minimise (w - 3)² with each optimiser; both must converge.
    fn quadratic_loss(p: &Param) -> f64 {
        let mut g = Graph::new();
        let w = g.param(p);
        let shifted = g.add_scalar(w, -3.0);
        let sq = g.mul(shifted, shifted);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.value(loss).get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::from_matrix(Matrix::row_vec(vec![0.0]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&p);
            opt.step();
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::from_matrix(Matrix::row_vec(vec![0.0]));
        let opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..200 {
            opt.zero_grad();
            quadratic_loss(&p);
            opt.step();
        }
        assert!((p.value().get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let p = Param::from_matrix(Matrix::row_vec(vec![0.0]));
        // Huge artificial gradient.
        p.accumulate_grad(&Matrix::row_vec(vec![1e9]));
        let mut opt = Adam::new(vec![p.clone()], 0.1).with_clip(Some(1.0));
        opt.step();
        // One Adam step with lr 0.1 moves at most ~lr.
        assert!(p.value().get(0, 0).abs() <= 0.11);
    }

    #[test]
    fn lr_schedule_warms_up_and_decays() {
        let sched = LrSchedule::new(1e-3, 10, 0.5);
        assert!((sched.lr_at(0, 0) - 1e-4).abs() < 1e-12);
        assert!((sched.lr_at(9, 0) - 1e-3).abs() < 1e-12);
        assert!((sched.lr_at(100, 0) - 1e-3).abs() < 1e-12);
        assert!((sched.lr_at(100, 2) - 0.25e-3).abs() < 1e-12);
        // Zero warmup is the identity.
        let flat = LrSchedule::new(2e-3, 0, 1.0);
        assert_eq!(flat.lr_at(0, 5), 2e-3);
    }

    #[test]
    fn adam_lr_override() {
        let p = Param::from_matrix(Matrix::row_vec(vec![0.0]));
        let mut opt = Adam::new(vec![p], 1e-3);
        assert_eq!(opt.lr(), 1e-3);
        opt.set_lr(5e-4);
        assert_eq!(opt.lr(), 5e-4);
    }

    #[test]
    fn zero_grad_clears_all() {
        let p = Param::from_matrix(Matrix::row_vec(vec![0.0, 0.0]));
        p.accumulate_grad(&Matrix::row_vec(vec![1.0, 2.0]));
        let opt = Sgd::new(vec![p.clone()], 0.1);
        opt.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }
}
