//! Persistent learnable parameters shared across computation graphs.
//!
//! Parameters are `Arc<RwLock<…>>` handles: cloning is cheap, training
//! writes through the lock, and — crucially for the batched inference
//! engine — a trained model is `Send + Sync`, so a single instance can be
//! shared read-only across the worker threads of
//! `trmma_core::batch` without copying its weights.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;

/// Weight-initialisation strategies.
#[derive(Debug, Clone, Copy)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Uniform in `[-a, a]`.
    Uniform(f64),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    Xavier,
}

#[derive(Debug)]
pub(crate) struct ParamInner {
    pub value: Matrix,
    pub grad: Matrix,
    /// Adam first-moment state.
    pub m: Matrix,
    /// Adam second-moment state.
    pub v: Matrix,
}

/// A learnable matrix. Cloning is cheap (shared handle); the value persists
/// across [`crate::Graph`] instances and accumulates gradients from
/// [`crate::Graph::backward`].
#[derive(Debug, Clone)]
pub struct Param {
    pub(crate) inner: Arc<RwLock<ParamInner>>,
}

impl Param {
    /// Read access to the inner state (uncontended in single-threaded
    /// training; read-shared during batched inference).
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, ParamInner> {
        self.inner.read().expect("param lock poisoned")
    }

    /// Write access to the inner state.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, ParamInner> {
        self.inner.write().expect("param lock poisoned")
    }
    /// Creates a parameter with the given initialisation.
    #[must_use]
    pub fn new(rows: usize, cols: usize, init: Init, rng: &mut StdRng) -> Self {
        let value = match init {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Uniform(a) => Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect(),
            ),
            Init::Xavier => {
                let a = (6.0 / (rows + cols) as f64).sqrt();
                Matrix::from_vec(
                    rows,
                    cols,
                    (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect(),
                )
            }
        };
        Self::from_matrix(value)
    }

    /// Wraps an existing matrix as a parameter (used to initialise MMA's
    /// segment-embedding table from pre-trained Node2Vec vectors, Eq. 1).
    #[must_use]
    pub fn from_matrix(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            inner: Arc::new(RwLock::new(ParamInner {
                value,
                grad: Matrix::zeros(r, c),
                m: Matrix::zeros(r, c),
                v: Matrix::zeros(r, c),
            })),
        }
    }

    /// Shape of the parameter.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.read().value.shape()
    }

    /// Snapshot of the current value.
    #[must_use]
    pub fn value(&self) -> Matrix {
        self.read().value.clone()
    }

    /// Overwrites the value (e.g. for loading pre-trained weights).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn set_value(&self, value: Matrix) {
        let mut inner = self.write();
        assert_eq!(inner.value.shape(), value.shape(), "param shape mismatch");
        inner.value = value;
    }

    /// Snapshot of the accumulated gradient.
    #[must_use]
    pub fn grad(&self) -> Matrix {
        self.read().grad.clone()
    }

    /// Adds `g` into the accumulated gradient.
    pub(crate) fn accumulate_grad(&self, g: &Matrix) {
        self.write().grad.add_assign(g);
    }

    /// Scatter-adds gradient rows: row `i` of `g` accumulates into this
    /// param's gradient row `rows[i]` (duplicates accumulate). The flush
    /// path of [`crate::Graph::embed_param`].
    pub(crate) fn accumulate_grad_rows(&self, rows: &[usize], g: &Matrix) {
        let mut inner = self.write();
        for (i, &r) in rows.iter().enumerate() {
            for (dst, src) in inner.grad.row_mut(r).iter_mut().zip(g.row(i)) {
                *dst += src;
            }
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.write().grad.fill_zero();
    }

    /// Number of scalar weights.
    #[must_use]
    pub fn num_weights(&self) -> usize {
        let (r, c) = self.shape();
        r * c
    }

    /// Whether two handles refer to the same parameter.
    #[must_use]
    pub fn same_as(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Total scalar weight count of a parameter collection.
#[must_use]
pub fn total_weights(params: &[Param]) -> usize {
    params.iter().map(Param::num_weights).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn init_shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Param::new(2, 3, Init::Zeros, &mut rng);
        assert!(z.value().data().iter().all(|&x| x == 0.0));
        let u = Param::new(4, 4, Init::Uniform(0.1), &mut rng);
        assert!(u.value().data().iter().all(|&x| x.abs() <= 0.1));
        let x = Param::new(8, 8, Init::Xavier, &mut rng);
        let bound = (6.0 / 16.0f64).sqrt();
        assert!(x.value().data().iter().all(|&v| v.abs() <= bound));
        // Not all zero.
        assert!(x.value().frobenius() > 0.0);
    }

    #[test]
    fn grads_accumulate_and_clear() {
        let p = Param::from_matrix(Matrix::zeros(1, 2));
        p.accumulate_grad(&Matrix::row_vec(vec![1.0, 2.0]));
        p.accumulate_grad(&Matrix::row_vec(vec![0.5, 0.5]));
        assert_eq!(p.grad().data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn clone_shares_state() {
        let p = Param::from_matrix(Matrix::zeros(1, 1));
        let q = p.clone();
        q.set_value(Matrix::row_vec(vec![7.0]));
        assert_eq!(p.value().data(), &[7.0]);
        assert!(p.same_as(&q));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let a = Param::new(3, 3, Init::Xavier, &mut r1);
        let b = Param::new(3, 3, Init::Xavier, &mut r2);
        assert_eq!(a.value().data(), b.value().data());
    }
}
