//! Node2Vec (Grover & Leskovec, KDD 2016) over the segment graph.
//!
//! MMA pre-learns segment embeddings `W_G ∈ R^{n×d0}` with Node2Vec and uses
//! them to initialise the candidate-embedding table `W_C` (Eq. 1). The graph
//! walked here is the *segment* graph: vertices are road segments, an arc
//! `e → e'` exists when `e'` can follow `e` on a route — exactly the
//! connectivity the embedding is meant to preserve.
//!
//! Two pieces:
//!
//! * [`generate_walks`] — second-order biased random walks with the
//!   return/in-out parameters `p` and `q`;
//! * [`train_embeddings`] — skip-gram with negative sampling trained by SGD
//!   (negatives drawn from the unigram distribution raised to ¾, as in
//!   word2vec).
//!
//! # Example
//!
//! ```
//! use trmma_node2vec::{train_embeddings, Node2VecConfig};
//! use trmma_roadnet::{generate_city, NetworkConfig};
//!
//! let net = generate_city(&NetworkConfig::with_size(3, 3, 5));
//! let cfg = Node2VecConfig {
//!     dim: 8,
//!     walks_per_node: 1,
//!     walk_len: 6,
//!     epochs: 1,
//!     ..Node2VecConfig::default()
//! };
//! let emb = train_embeddings(&net, &cfg);
//! // One d0-dimensional embedding per road segment (Eq. 1's W_G).
//! assert_eq!((emb.rows(), emb.cols()), (net.num_segments(), 8));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trmma_nn::Matrix;
use trmma_roadnet::{RoadNetwork, SegmentId};

/// Hyper-parameters for Node2Vec.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    /// Embedding dimensionality `d0` (the paper uses 64).
    pub dim: usize,
    /// Walks started per segment.
    pub walks_per_node: usize,
    /// Length of each walk.
    pub walk_len: usize,
    /// Skip-gram context window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Return parameter `p` (likelihood of revisiting the previous vertex).
    pub p: f64,
    /// In-out parameter `q` (BFS- vs DFS-like exploration).
    pub q: f64,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            walks_per_node: 4,
            walk_len: 20,
            window: 4,
            negatives: 4,
            p: 1.0,
            q: 2.0,
            epochs: 2,
            lr: 0.025,
            seed: 7,
        }
    }
}

/// Generates second-order biased walks over the segment graph.
///
/// Transition weights from `(prev, cur)` to a successor `next`:
/// `1/p` if `next == prev` (return), `1` if `next` is also a successor of
/// `prev` (distance 1), else `1/q` (explore).
#[must_use]
pub fn generate_walks(net: &RoadNetwork, cfg: &Node2VecConfig, rng: &mut StdRng) -> Vec<Vec<u32>> {
    let n = net.num_segments();
    let mut walks = Vec::with_capacity(n * cfg.walks_per_node);
    for start in 0..n as u32 {
        for _ in 0..cfg.walks_per_node {
            let mut walk = Vec::with_capacity(cfg.walk_len);
            walk.push(start);
            let mut prev: Option<u32> = None;
            let mut cur = start;
            while walk.len() < cfg.walk_len {
                let succs = net.successors(SegmentId(cur));
                if succs.is_empty() {
                    break;
                }
                let next = match prev {
                    None => succs[rng.gen_range(0..succs.len())].0,
                    Some(p_seg) => {
                        let prev_succs = net.successors(SegmentId(p_seg));
                        let weights: Vec<f64> = succs
                            .iter()
                            .map(|&s| {
                                if s.0 == p_seg {
                                    1.0 / cfg.p
                                } else if prev_succs.contains(&s) {
                                    1.0
                                } else {
                                    1.0 / cfg.q
                                }
                            })
                            .collect();
                        let total: f64 = weights.iter().sum();
                        let mut draw = rng.gen_range(0.0..total);
                        let mut chosen = succs[succs.len() - 1].0;
                        for (s, w) in succs.iter().zip(&weights) {
                            if draw < *w {
                                chosen = s.0;
                                break;
                            }
                            draw -= w;
                        }
                        chosen
                    }
                };
                walk.push(next);
                prev = Some(cur);
                cur = next;
            }
            walks.push(walk);
        }
    }
    walks
}

/// Trains skip-gram embeddings over the walks; returns the `n × dim` input
/// embedding table (the `W_G` of Eq. 1).
#[must_use]
pub fn train_embeddings(net: &RoadNetwork, cfg: &Node2VecConfig) -> Matrix {
    let n = net.num_segments();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let walks = generate_walks(net, cfg, &mut rng);

    // Unigram^0.75 negative-sampling table.
    let mut counts = vec![0f64; n];
    for w in &walks {
        for &s in w {
            counts[s as usize] += 1.0;
        }
    }
    let weights: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().unwrap_or(&1.0);
    let sample_negative = |rng: &mut StdRng| -> usize {
        let draw = rng.gen_range(0.0..total_weight.max(f64::MIN_POSITIVE));
        cumulative.partition_point(|&c| c <= draw).min(n - 1)
    };

    // Input (emb) and output (ctx) tables, small random init.
    let scale = 0.5 / cfg.dim as f64;
    let mut emb: Vec<f64> = (0..n * cfg.dim).map(|_| rng.gen_range(-scale..scale)).collect();
    let mut ctx: Vec<f64> = vec![0.0; n * cfg.dim];

    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
    for _epoch in 0..cfg.epochs {
        for walk in &walks {
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(walk.len());
                for (j, &ctx_id) in walk.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let target = ctx_id as usize;
                    let c_off = center as usize * cfg.dim;
                    // One positive + `negatives` negative updates.
                    let mut grad_center = vec![0.0; cfg.dim];
                    for k in 0..=cfg.negatives {
                        let (out, label) =
                            if k == 0 { (target, 1.0) } else { (sample_negative(&mut rng), 0.0) };
                        let o_off = out * cfg.dim;
                        let dot: f64 = (0..cfg.dim).map(|d| emb[c_off + d] * ctx[o_off + d]).sum();
                        let g = (sigmoid(dot) - label) * cfg.lr;
                        for d in 0..cfg.dim {
                            grad_center[d] += g * ctx[o_off + d];
                            ctx[o_off + d] -= g * emb[c_off + d];
                        }
                    }
                    for d in 0..cfg.dim {
                        emb[c_off + d] -= grad_center[d];
                    }
                }
            }
        }
    }
    Matrix::from_vec(n, cfg.dim, emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trmma_roadnet::{generate_city, NetworkConfig};

    fn small_cfg() -> Node2VecConfig {
        Node2VecConfig {
            dim: 16,
            walks_per_node: 3,
            walk_len: 10,
            epochs: 2,
            ..Node2VecConfig::default()
        }
    }

    fn net() -> RoadNetwork {
        generate_city(&NetworkConfig::with_size(6, 6, 21))
    }

    #[test]
    fn walks_follow_graph_edges() {
        let net = net();
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let walks = generate_walks(&net, &cfg, &mut rng);
        assert_eq!(walks.len(), net.num_segments() * cfg.walks_per_node);
        for w in &walks {
            for pair in w.windows(2) {
                assert!(
                    net.successors(SegmentId(pair[0])).contains(&SegmentId(pair[1])),
                    "walk steps must follow successor arcs"
                );
            }
        }
    }

    #[test]
    fn embeddings_shape_and_determinism() {
        let net = net();
        let cfg = small_cfg();
        let a = train_embeddings(&net, &cfg);
        let b = train_embeddings(&net, &cfg);
        assert_eq!(a.shape(), (net.num_segments(), cfg.dim));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn neighbours_more_similar_than_distant_segments() {
        let net = net();
        let cfg =
            Node2VecConfig { dim: 32, walks_per_node: 8, walk_len: 16, epochs: 4, ..small_cfg() };
        let emb = train_embeddings(&net, &cfg);
        let cos = |a: usize, b: usize| -> f64 {
            let (ra, rb) = (emb.row(a), emb.row(b));
            let dot: f64 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
            let na: f64 = ra.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = rb.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-12)
        };
        // Average similarity of adjacent pairs should exceed that of random
        // far pairs. Aggregate to be robust to individual fluctuations.
        let mut adj_sum = 0.0;
        let mut adj_n = 0usize;
        for s in 0..net.num_segments().min(60) {
            for &succ in net.successors(SegmentId(s as u32)) {
                adj_sum += cos(s, succ.idx());
                adj_n += 1;
            }
        }
        let mut far_sum = 0.0;
        let mut far_n = 0usize;
        let n = net.num_segments();
        for s in 0..n.min(60) {
            let far = (s + n / 2) % n;
            far_sum += cos(s, far);
            far_n += 1;
        }
        let adj_mean = adj_sum / adj_n as f64;
        let far_mean = far_sum / far_n as f64;
        assert!(adj_mean > far_mean, "adjacent {adj_mean:.3} should beat distant {far_mean:.3}");
    }

    #[test]
    fn walk_lengths_bounded() {
        let net = net();
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(3);
        let walks = generate_walks(&net, &cfg, &mut rng);
        assert!(walks.iter().all(|w| w.len() <= cfg.walk_len && !w.is_empty()));
    }
}
