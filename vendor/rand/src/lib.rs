//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] sampling methods, [`seq::SliceRandom::shuffle`] and
//! [`seq::index::sample`].
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! handful of primitives the models need are implemented here directly.
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulation/initialisation workloads and fully deterministic
//! given a seed (every stream in the repo is seeded). Streams differ from
//! upstream `rand`'s ChaCha-based `StdRng`; nothing in the workspace
//! depends on upstream's exact bit streams, only on determinism.

use std::ops::Range;

/// Uniform pseudo-random source: 64 fresh bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an [`Rng`] via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≪ 2^64 in practice,
                // so the rejection loop almost never spins.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform draw of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic, `Clone`, and cheap to fork.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement (subset of `rand::seq::index`).
    pub mod index {
        use crate::Rng;

        /// A set of sampled indices (mirrors `rand::seq::index::IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// in random order.
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: Rng>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            // Partial Fisher–Yates over an index arena: O(length) setup,
            // fine at the corpus sizes this repo works with.
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(5..17);
            assert!((5..17).contains(&n));
        }
    }

    #[test]
    fn uniform_f64_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left order intact");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let picked = index::sample(&mut rng, 50, 20).into_vec();
        assert_eq!(picked.len(), 20);
        let mut s = picked.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20, "duplicates sampled");
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
