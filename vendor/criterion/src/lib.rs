//! Offline stand-in for the subset of the `criterion` API used by the
//! workspace's benchmarks: [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkGroup::bench_with_input`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: a short calibration pass sizes the batch, then each
//! benchmark runs a fixed wall-clock budget and reports the mean, minimum
//! and p50 iteration time to stdout. No statistics beyond that — the goal
//! is a dependency-free `cargo bench` that surfaces regressions, not
//! publication-grade confidence intervals.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Time budget per benchmark after calibration.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
/// Minimum number of measured iterations.
const MIN_ITERS: u64 = 10;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one sample per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibration: one untimed call, then time in small batches.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET || iters < MIN_ITERS {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let n = b.samples.len();
    let mean = b.samples.iter().sum::<f64>() / n as f64;
    let mut sorted = b.samples;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = sorted[0];
    let p50 = sorted[n / 2];
    println!(
        "{name:<44} mean {:>10}  p50 {:>10}  min {:>10}  ({n} iters)",
        fmt_time(mean),
        fmt_time(p50),
        fmt_time(min)
    );
}

/// Benchmark registry/driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }

    /// Compatibility no-op (`criterion` builds its config here).
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Identifier of a parameterised benchmark (subset of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (sample-count hint).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, &mut |b| f(b, input));
        self
    }

    /// Runs an unparameterised benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_bench(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (subset of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` (subset of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("knn", 10).id, "knn/10");
        assert_eq!(BenchmarkId::from_parameter(500).id, "500");
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(fmt_time(2.0).contains(" s"));
    }
}
