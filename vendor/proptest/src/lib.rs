//! Offline stand-in for the subset of `proptest` used by this workspace's
//! property tests: the [`proptest!`] macro, range/tuple/collection
//! strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Generation is deterministic: each test case derives its RNG stream from
//! the test name and case index, so failures reproduce exactly. Shrinking
//! is not implemented — a failing case reports its index and message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property (subset of `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic RNG for one test case.
#[must_use]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Strategy namespace (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;
        use std::ops::Range;

        /// Length specification for [`vec()`]: an exact size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self(n..n + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self(r)
            }
        }

        /// A strategy producing `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.0.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `proptest::collection::vec`: vectors with lengths drawn from
        /// `size` and elements from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// The usual imports (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with
/// an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Declares deterministic property tests (subset of `proptest::proptest!`).
///
/// Each declared function runs `config.cases` generated cases; a failing
/// case panics with its index so it can be reproduced (generation is a pure
/// function of the test name and case index).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest case {case} of {} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 2u32..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..2, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn prop_map_applies(p in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0.0..1.0f64;
        let a = s.generate(&mut crate::case_rng("t", 4));
        let b = s.generate(&mut crate::case_rng("t", 4));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::case_rng("t", 5));
        assert_ne!(a, c);
    }
}
